//! Query description and results.

use crate::aggregate::AggExpr;
use crate::expr::{Col, Expr};
use crate::predicate::Predicate;
use scanraw_types::{Error, Result, Value};
use std::time::Duration;

/// An aggregate query over one raw-file-backed table:
/// `SELECT <group columns>, <aggregates> FROM table [WHERE …] [GROUP BY …]`.
///
/// This covers the paper's entire evaluation workload: the micro-benchmark
/// `SELECT SUM(ΣCi) FROM file` and the genomic CIGAR-distribution group-by
/// with a pattern predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Table (registered with the engine) to scan.
    pub table: String,
    /// Row filter; also drives chunk skipping when range-expressible.
    pub filter: Option<Predicate>,
    /// Grouping columns (empty = one global group).
    pub group_by: Vec<Col>,
    /// Aggregates to compute per group (at least one).
    pub aggregates: Vec<AggExpr>,
    /// Evaluate the filter during PARSE (push-down selection, paper §2).
    /// Chunks scanned under push-down are neither cached nor loaded, so this
    /// is only worthwhile for highly selective one-off queries.
    pub pushdown: bool,
    /// Explicit projection ([`Query::select`]): columns the scan must
    /// materialize in addition to the referenced ones. `None` (default)
    /// projects exactly the referenced columns. Widening the projection is
    /// how a query pre-heats columns it does not aggregate — the scan feeds
    /// the column-heat tracker with the effective projection, steering which
    /// cells speculative loading persists.
    pub projection: Option<Vec<Col>>,
}

impl Query {
    /// The paper's micro-benchmark: `SELECT SUM(c_0 + … + c_{k-1}) FROM t`.
    pub fn sum_of_columns(
        table: impl Into<String>,
        cols: impl IntoIterator<Item = impl Into<Col>>,
    ) -> Self {
        Query {
            table: table.into(),
            filter: None,
            group_by: Vec::new(),
            aggregates: vec![AggExpr::sum(Expr::sum_of_columns(cols))],
            pushdown: false,
            projection: None,
        }
    }

    /// Start building a query with validated construction ([`QueryBuilder`]).
    pub fn builder(table: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            table: table.into(),
            filter: None,
            group_by: Vec::new(),
            aggregates: Vec::new(),
            pushdown: false,
            projection: None,
        }
    }

    /// Builder: add a filter.
    pub fn with_filter(mut self, p: Predicate) -> Self {
        self.filter = Some(p);
        self
    }

    /// Builder: group by the given columns.
    pub fn with_group_by(mut self, cols: impl IntoIterator<Item = impl Into<Col>>) -> Self {
        self.group_by = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: enable push-down selection.
    pub fn with_pushdown(mut self) -> Self {
        self.pushdown = true;
        self
    }

    /// Builder: set an explicit projection. The scan materializes these
    /// columns in addition to every referenced one.
    pub fn select(mut self, cols: impl IntoIterator<Item = impl Into<Col>>) -> Self {
        self.projection = Some(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Every column the query *references* (filter, group-by, aggregates).
    pub fn required_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols.extend(self.group_by.iter().map(|c| c.index()));
        for a in &self.aggregates {
            cols.extend(a.expr.columns());
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// The columns the scan must provide: the explicit projection (if any)
    /// unioned with the referenced columns, sorted and deduplicated. With no
    /// explicit [`Query::select`], this is exactly [`required_columns`].
    ///
    /// [`required_columns`]: Query::required_columns
    pub fn effective_projection(&self) -> Vec<usize> {
        let mut cols = self.required_columns();
        if let Some(proj) = &self.projection {
            cols.extend(proj.iter().map(|c| c.index()));
            cols.sort_unstable();
            cols.dedup();
        }
        cols
    }

    /// Validates the query against the width of its table's schema: at least
    /// one aggregate, and every referenced column inside the schema. Runs at
    /// [`QueryBuilder::build`] time (column check deferred to the engine,
    /// which knows the schema) so malformed queries fail typed and early
    /// instead of mid-scan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] naming the offending column or the
    /// empty aggregate list.
    pub fn validate(&self, schema_len: usize) -> Result<()> {
        if self.aggregates.is_empty() {
            return Err(Error::invalid_query(format!(
                "query over '{}' computes no aggregates",
                self.table
            )));
        }
        if let Some(&max) = self.effective_projection().last() {
            if max >= schema_len {
                return Err(Error::invalid_query(format!(
                    "column {max} out of range for schema of {schema_len} columns"
                )));
            }
        }
        Ok(())
    }
}

/// Validated query construction: [`QueryBuilder::build`] rejects structurally
/// invalid queries (no aggregates) with a typed [`Error::InvalidQuery`]
/// before any scan starts; the engine re-validates column ranges against the
/// schema at execute time.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    table: String,
    filter: Option<Predicate>,
    group_by: Vec<Col>,
    aggregates: Vec<AggExpr>,
    pushdown: bool,
    projection: Option<Vec<Col>>,
}

impl QueryBuilder {
    /// Adds a row filter (also drives chunk skipping when range-expressible).
    pub fn filter(mut self, p: Predicate) -> Self {
        self.filter = Some(p);
        self
    }

    /// Groups by the given columns.
    pub fn group_by(mut self, cols: impl IntoIterator<Item = impl Into<Col>>) -> Self {
        self.group_by = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Adds one aggregate (call repeatedly for several).
    pub fn aggregate(mut self, a: AggExpr) -> Self {
        self.aggregates.push(a);
        self
    }

    /// Enables push-down selection.
    pub fn pushdown(mut self) -> Self {
        self.pushdown = true;
        self
    }

    /// Sets an explicit projection (see [`Query::select`]).
    pub fn select(mut self, cols: impl IntoIterator<Item = impl Into<Col>>) -> Self {
        self.projection = Some(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] when no aggregate was added.
    pub fn build(self) -> Result<Query> {
        let q = Query {
            table: self.table,
            filter: self.filter,
            group_by: self.group_by,
            aggregates: self.aggregates,
            pushdown: self.pushdown,
            projection: self.projection,
        };
        if q.aggregates.is_empty() {
            return Err(Error::invalid_query(format!(
                "query over '{}' computes no aggregates",
                q.table
            )));
        }
        Ok(q)
    }
}

/// One result row: group key values followed by aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    pub keys: Vec<Value>,
    pub aggregates: Vec<Value>,
}

/// A completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// One row per group, sorted by key for determinism.
    pub rows: Vec<ResultRow>,
    /// Rows that passed the filter.
    pub rows_scanned: u64,
    /// Engine-side execution time (scan + fold).
    pub elapsed: Duration,
}

impl QueryResult {
    /// Single-group convenience: the first aggregate of the only row.
    pub fn scalar(&self) -> Option<&Value> {
        match self.rows.as_slice() {
            [row] => row.aggregates.first(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    #[test]
    fn sum_of_columns_shape() {
        let q = Query::sum_of_columns("t", [0, 1, 2]);
        assert_eq!(q.table, "t");
        assert!(q.filter.is_none());
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.required_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn required_columns_union() {
        let q = Query::sum_of_columns("t", [4])
            .with_filter(Predicate::between(1, 0i64, 9i64))
            .with_group_by(vec![2]);
        assert_eq!(q.required_columns(), vec![1, 2, 4]);
    }

    #[test]
    fn projection_defaults_to_referenced_and_unions_with_select() {
        let q = Query::sum_of_columns("t", [2]);
        assert_eq!(q.effective_projection(), vec![2]);
        let q = q.select([0usize, 5]);
        assert_eq!(q.required_columns(), vec![2]);
        assert_eq!(q.effective_projection(), vec![0, 2, 5]);
        // A projection narrower than the referenced set never hides columns
        // the query needs.
        let q = Query::sum_of_columns("t", [2, 3]).select([3usize]);
        assert_eq!(q.effective_projection(), vec![2, 3]);
        // Out-of-range selected columns fail validation like referenced ones.
        assert!(Query::sum_of_columns("t", [0])
            .select([9usize])
            .validate(4)
            .is_err());
    }

    #[test]
    fn scalar_only_for_single_row() {
        let r = QueryResult {
            rows: vec![ResultRow {
                keys: vec![],
                aggregates: vec![Value::Int(5)],
            }],
            rows_scanned: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
        let empty = QueryResult {
            rows: vec![],
            rows_scanned: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.scalar(), None);
    }
}
