//! Query description and results.

use crate::aggregate::AggExpr;
use crate::expr::Expr;
use crate::predicate::Predicate;
use scanraw_types::Value;
use std::time::Duration;

/// An aggregate query over one raw-file-backed table:
/// `SELECT <group columns>, <aggregates> FROM table [WHERE …] [GROUP BY …]`.
///
/// This covers the paper's entire evaluation workload: the micro-benchmark
/// `SELECT SUM(ΣCi) FROM file` and the genomic CIGAR-distribution group-by
/// with a pattern predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Table (registered with the engine) to scan.
    pub table: String,
    /// Row filter; also drives chunk skipping when range-expressible.
    pub filter: Option<Predicate>,
    /// Grouping columns (empty = one global group).
    pub group_by: Vec<usize>,
    /// Aggregates to compute per group (at least one).
    pub aggregates: Vec<AggExpr>,
    /// Evaluate the filter during PARSE (push-down selection, paper §2).
    /// Chunks scanned under push-down are neither cached nor loaded, so this
    /// is only worthwhile for highly selective one-off queries.
    pub pushdown: bool,
}

impl Query {
    /// The paper's micro-benchmark: `SELECT SUM(c_0 + … + c_{k-1}) FROM t`.
    pub fn sum_of_columns(table: impl Into<String>, cols: impl IntoIterator<Item = usize>) -> Self {
        Query {
            table: table.into(),
            filter: None,
            group_by: Vec::new(),
            aggregates: vec![AggExpr::sum(Expr::sum_of_columns(cols))],
            pushdown: false,
        }
    }

    /// Builder: add a filter.
    pub fn with_filter(mut self, p: Predicate) -> Self {
        self.filter = Some(p);
        self
    }

    /// Builder: group by the given columns.
    pub fn with_group_by(mut self, cols: impl Into<Vec<usize>>) -> Self {
        self.group_by = cols.into();
        self
    }

    /// Builder: enable push-down selection.
    pub fn with_pushdown(mut self) -> Self {
        self.pushdown = true;
        self
    }

    /// Every column the query touches (projection the scan must provide).
    pub fn required_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols.extend(self.group_by.iter().copied());
        for a in &self.aggregates {
            cols.extend(a.expr.columns());
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// One result row: group key values followed by aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    pub keys: Vec<Value>,
    pub aggregates: Vec<Value>,
}

/// A completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// One row per group, sorted by key for determinism.
    pub rows: Vec<ResultRow>,
    /// Rows that passed the filter.
    pub rows_scanned: u64,
    /// Engine-side execution time (scan + fold).
    pub elapsed: Duration,
}

impl QueryResult {
    /// Single-group convenience: the first aggregate of the only row.
    pub fn scalar(&self) -> Option<&Value> {
        match self.rows.as_slice() {
            [row] => row.aggregates.first(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    #[test]
    fn sum_of_columns_shape() {
        let q = Query::sum_of_columns("t", [0, 1, 2]);
        assert_eq!(q.table, "t");
        assert!(q.filter.is_none());
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.required_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn required_columns_union() {
        let q = Query::sum_of_columns("t", [4])
            .with_filter(Predicate::between(1, 0i64, 9i64))
            .with_group_by(vec![2]);
        assert_eq!(q.required_columns(), vec![1, 2, 4]);
    }

    #[test]
    fn scalar_only_for_single_row() {
        let r = QueryResult {
            rows: vec![ResultRow {
                keys: vec![],
                aggregates: vec![Value::Int(5)],
            }],
            rows_scanned: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
        let empty = QueryResult {
            rows: vec![],
            rows_scanned: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.scalar(), None);
    }
}
