//! The multi-tenant serving layer: bounded admission, per-tenant fairness,
//! and automatic shared-scan batching over one `Arc<Session>`.
//!
//! The paper's pipeline assumes a single query stream; this module is the
//! serving front that turns the (now thread-shareable) engine into something
//! many concurrent callers can hammer:
//!
//! * **Admission control** — a bounded queue. Past
//!   [`ServeConfig::max_queue_depth`] outstanding queries, submissions are
//!   rejected with [`Error::Overloaded`] instead of queuing unboundedly.
//! * **Per-tenant fairness** — queued queries are keyed by tenant id and
//!   dispatched round-robin across tenants (a deficit round-robin with a
//!   quantum of one query per turn), so a tenant flooding the queue cannot
//!   starve another's head-of-line query: every tenant with pending work is
//!   served once per cycle.
//! * **Shared-scan batching** — when the dispatcher picks a query, it
//!   co-opts up to [`ServeConfig::batch_window`] *currently queued* queries
//!   against the same table (round-robin across tenants again) into one
//!   [`Engine::execute_shared`](crate::Engine::execute_shared) fan-out, so
//!   concurrent arrivals share a scan instead of each paying one. The
//!   window is queue-state-based, not wall-clock-based: dispatch never
//!   waits for stragglers, which keeps batching deterministic under virtual
//!   clocks (`batch_window = 0` disables it).
//!
//! Everything is observable through the server's own [`Obs`] bundle, on the
//! device clock: `serve.*` counters, a `serve.queue.depth` gauge, per-tenant
//! latency histograms, and `QueryAdmitted` / `QueryRejected` /
//! `BatchFormed` / `QueryServed` journal events. Trace roots minted by the
//! engine carry `tenant` and `serve.batch` tags (see
//! [`SharedOutcome`](crate::executor::SharedOutcome)).
//!
//! Locking discipline: one mutex guards the queue state; it is never held
//! across a channel operation, a query execution, or a journal append — the
//! dispatcher snapshots a batch under the lock, drops it, then runs the
//! scan. Wake-ups ride an unbounded token channel (one token per admit), so
//! no condvar is needed and a spurious token is just an empty dispatch.

use crate::executor::QueryOutcome;
use crate::query::Query;
use crate::session::Session;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use scanraw_obs::{json, Obs, ObsEvent, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use scanraw_types::{Error, Result};

/// Identifies one tenant (caller) of the serving layer. Plain integers keep
/// the fairness state and the obs tags cheap; map your authn identities to
/// ids at the edge.
pub type TenantId = u64;

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: submissions past this many queued queries are
    /// rejected with [`Error::Overloaded`]. Must be at least 1.
    pub max_queue_depth: usize,
    /// How many additional queued same-table queries one dispatch may co-opt
    /// into a shared scan (batch size ≤ `1 + batch_window`). `0` disables
    /// batching: every query pays its own scan.
    pub batch_window: usize,
    /// Dispatcher threads. `0` means no background dispatch: callers drive
    /// the queue explicitly with [`Server::pump`] (deterministic mode, used
    /// by the differential tests).
    pub dispatchers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue_depth: 64,
            batch_window: 7,
            dispatchers: 2,
        }
    }
}

impl ServeConfig {
    pub fn validate(&self) -> Result<()> {
        if self.max_queue_depth == 0 {
            return Err(Error::Config(
                "serve.max_queue_depth must be at least 1".into(),
            ));
        }
        Ok(())
    }

    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    pub fn with_batch_window(mut self, window: usize) -> Self {
        self.batch_window = window;
        self
    }

    pub fn with_dispatchers(mut self, n: usize) -> Self {
        self.dispatchers = n;
        self
    }
}

/// One admitted query waiting for dispatch.
struct Pending {
    tenant: TenantId,
    query: Query,
    admitted_at: Duration,
    reply: Sender<Result<QueryOutcome>>,
}

/// Queue state behind the one serving-layer mutex.
struct QueueState {
    /// Per-tenant FIFO queues. A `BTreeMap` gives the round-robin cursor a
    /// deterministic tenant order (and keeps iteration ordered for L014).
    queues: BTreeMap<TenantId, VecDeque<Pending>>,
    /// Tenant served most recently; the next turn goes to the first tenant
    /// after it (cyclically) with pending work.
    rr_cursor: Option<TenantId>,
    /// Total queued queries across tenants (the admission bound applies to
    /// this, not to any single tenant).
    depth: usize,
    /// Monotonic id for [`ObsEvent::BatchFormed`] / [`ObsEvent::QueryServed`].
    next_batch: u64,
    /// Every tenant that was ever admitted, for the latency report.
    seen: BTreeSet<TenantId>,
}

/// A dispatch unit snapshotted out of the queue: one seed query plus any
/// same-table queries co-opted into its scan.
struct Batch {
    id: u64,
    items: Vec<Pending>,
}

struct Shared {
    session: Arc<Session>,
    config: ServeConfig,
    obs: Obs,
    state: Mutex<QueueState>,
    closed: AtomicBool,
}

/// A submitted query's handle; redeem it with [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<Result<QueryOutcome>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the query is served (or the server shuts down without
    /// serving it, which yields [`Error::Pipeline`]).
    pub fn wait(self) -> Result<QueryOutcome> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(Error::Pipeline(
                "serving dispatcher dropped the reply".into(),
            )),
        }
    }
}

/// The serving front over one shared [`Session`]. See the module docs.
///
/// Dropping the server shuts it down: new submissions are rejected, the
/// dispatchers drain every already-admitted query, then exit.
pub struct Server {
    shared: Arc<Shared>,
    /// Dropping the sender disconnects the token channel, which is the
    /// dispatchers' signal to drain and exit.
    token_tx: Mutex<Option<Sender<()>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts a server over a shared session. With `config.dispatchers == 0`
    /// no threads are spawned and the caller drives dispatch via
    /// [`Server::pump`].
    pub fn start(session: Arc<Session>, config: ServeConfig) -> Result<Server> {
        config.validate()?;
        // The server's journal and histograms read the session's device
        // clock, so serve latencies line up with scan spans and are
        // deterministic under a virtual clock.
        let clock = session.database().disk().clock().clone();
        let obs = Obs::with_time_source(
            scanraw_obs::DEFAULT_JOURNAL_CAPACITY,
            Arc::new(move || clock.now()),
        );
        let shared = Arc::new(Shared {
            session,
            config: config.clone(),
            obs,
            state: Mutex::new(QueueState {
                queues: BTreeMap::new(),
                rr_cursor: None,
                depth: 0,
                next_batch: 0,
                seen: BTreeSet::new(),
            }),
            closed: AtomicBool::new(false),
        });
        let (token_tx, token_rx) = unbounded::<()>();
        let handles = (0..config.dispatchers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tokens = token_rx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-dispatch-{i}"))
                    .spawn(move || run_dispatcher(&shared, &tokens))
                    .map_err(|e| Error::Pipeline(format!("spawning dispatcher: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            token_tx: Mutex::new(Some(token_tx)),
            handles: Mutex::new(handles),
        })
    }

    /// Submits a query for `tenant`, returning a [`Ticket`] immediately.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the admission queue is at its bound;
    /// [`Error::Pipeline`] after shutdown; validation errors
    /// ([`Error::Query`]/[`Error::InvalidQuery`]) for malformed queries —
    /// validation happens here, up front, so one bad query can never poison
    /// a shared-scan batch it would have joined.
    pub fn submit(&self, tenant: TenantId, query: &Query) -> Result<Ticket> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(Error::Pipeline("server is shut down".into()));
        }
        let op = self.shared.session.engine().operator(&query.table)?;
        query.validate(op.schema().len())?;

        let (tx, rx) = bounded::<Result<QueryOutcome>>(1);
        let admitted_at = now(&self.shared);
        // Admission decision under the queue lock; obs and the wake-up token
        // stay outside it.
        let depth_after = {
            let mut st = self.shared.state.lock();
            if st.depth >= self.shared.config.max_queue_depth {
                let depth = st.depth;
                drop(st);
                self.shared.obs.metrics.counter("serve.rejected").inc();
                self.shared.obs.event(ObsEvent::QueryRejected {
                    tenant,
                    depth: depth as u64,
                });
                return Err(Error::overloaded(depth));
            }
            st.depth += 1;
            st.seen.insert(tenant);
            st.queues.entry(tenant).or_default().push_back(Pending {
                tenant,
                query: query.clone(),
                admitted_at,
                reply: tx,
            });
            st.depth
        };
        self.shared.obs.metrics.counter("serve.admitted").inc();
        self.shared
            .obs
            .metrics
            .gauge("serve.queue.depth")
            .set(depth_after as i64);
        self.shared.obs.event(ObsEvent::QueryAdmitted {
            tenant,
            depth: depth_after as u64,
        });
        // One token per admitted query; a batch that drains several queries
        // leaves surplus tokens behind, which later wake a dispatcher to an
        // empty queue — harmless by design.
        let sender = self.token_tx.lock().clone();
        if let Some(tx) = sender {
            let _ = tx.send(());
        }
        Ok(Ticket { rx })
    }

    /// Submits and blocks until served: `submit(tenant, query)?.wait()`.
    pub fn execute(&self, tenant: TenantId, query: &Query) -> Result<QueryOutcome> {
        self.submit(tenant, query)?.wait()
    }

    /// Dispatches one batch on the calling thread, returning how many
    /// queries it served (0 when the queue is empty). This is the
    /// deterministic dispatch mode for `dispatchers == 0`; it is also safe
    /// alongside running dispatchers.
    pub fn pump(&self) -> usize {
        match take_batch(&self.shared) {
            Some(batch) => run_batch(&self.shared, batch),
            None => 0,
        }
    }

    /// Stops accepting queries, drains everything already admitted, joins
    /// the dispatchers. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        // Disconnect the token channel: dispatchers finish the backlog and
        // exit (see run_dispatcher).
        drop(self.token_tx.lock().take());
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
        // In pump mode (or if a caller raced shutdown) there may still be
        // queued queries; serve them here so shutdown never drops work.
        while self.pump() > 0 {}
    }

    /// The server's metrics registry, journal, and span recorder.
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The session this server dispatches into.
    pub fn session(&self) -> &Arc<Session> {
        &self.shared.session
    }

    /// Admission/batching counters, read from the metrics registry.
    pub fn counters(&self) -> ServeCounters {
        let m = &self.shared.obs.metrics;
        ServeCounters {
            admitted: m.counter_value("serve.admitted").unwrap_or(0),
            rejected: m.counter_value("serve.rejected").unwrap_or(0),
            completed: m.counter_value("serve.completed").unwrap_or(0),
            batches: m.counter_value("serve.batches").unwrap_or(0),
            batched_queries: m.counter_value("serve.batched_queries").unwrap_or(0),
        }
    }

    /// Per-tenant latency report (counts and p50/p95/p99 in nanoseconds on
    /// the device clock) plus the admission counters — the artifact the CI
    /// serve-stress job uploads.
    pub fn latency_report(&self) -> Value {
        let tenants: Vec<TenantId> = {
            let st = self.shared.state.lock();
            st.seen.iter().copied().collect()
        };
        let per_tenant: Vec<Value> = tenants
            .iter()
            .map(|t| {
                let name = format!("serve.tenant.{t}.latency.nanos");
                match self.shared.obs.metrics.histogram_snapshot(&name) {
                    Some(s) => json!({
                        "tenant": *t,
                        "served": s.count,
                        "p50_nanos": s.quantile(0.50),
                        "p95_nanos": s.quantile(0.95),
                        "p99_nanos": s.quantile(0.99),
                    }),
                    None => json!({"tenant": *t, "served": 0u64}),
                }
            })
            .collect();
        let c = self.counters();
        json!({
            "admitted": c.admitted,
            "rejected": c.rejected,
            "completed": c.completed,
            "batches": c.batches,
            "batched_queries": c.batched_queries,
            "tenants": per_tenant,
        })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Snapshot of the serving counters; `admitted == completed` once the queue
/// is drained, and `submissions == admitted + rejected` always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCounters {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub batches: u64,
    pub batched_queries: u64,
}

fn now(shared: &Shared) -> Duration {
    shared.session.database().disk().clock().now()
}

/// Dispatcher thread body: block on the token channel, dispatch, repeat;
/// when the channel disconnects (shutdown), drain the backlog and exit.
fn run_dispatcher(shared: &Shared, tokens: &Receiver<()>) {
    while tokens.recv().is_ok() {
        // A token with nothing queued is the surplus left by a batched
        // dispatch draining several admissions at once — harmless.
        if let Some(batch) = take_batch(shared) {
            run_batch(shared, batch);
        }
    }
    while let Some(batch) = take_batch(shared) {
        run_batch(shared, batch);
    }
}

/// The round-robin pick: first tenant strictly after the cursor (cyclically)
/// with pending work.
fn next_tenant(
    queues: &BTreeMap<TenantId, VecDeque<Pending>>,
    cursor: Option<TenantId>,
) -> Option<TenantId> {
    let after = cursor.and_then(|c| {
        queues
            .range((Bound::Excluded(c), Bound::Unbounded))
            .find(|(_, q)| !q.is_empty())
            .map(|(t, _)| *t)
    });
    after.or_else(|| queues.iter().find(|(_, q)| !q.is_empty()).map(|(t, _)| *t))
}

/// Snapshots one dispatch unit out of the queue: advances the round-robin
/// cursor, pops the seed query, then co-opts up to `batch_window` queued
/// same-table queries, visiting tenants round-robin so no single tenant
/// monopolizes the shared scan. Returns `None` when the queue is empty.
fn take_batch(shared: &Shared) -> Option<Batch> {
    let (batch, depth_after) = {
        let mut st = shared.state.lock();
        let seed_tenant = next_tenant(&st.queues, st.rr_cursor)?;
        st.rr_cursor = Some(seed_tenant);
        let seed = st.queues.get_mut(&seed_tenant)?.pop_front()?;
        st.depth -= 1;
        let window = shared.config.batch_window;
        let mut items = vec![seed];
        if window > 0 && !items[0].query.pushdown {
            let table = items[0].query.table.clone();
            // Cyclic tenant order starting after the seed, seed last: other
            // tenants get first claim on the shared scan's free seats.
            let mut order: Vec<TenantId> = st
                .queues
                .range((Bound::Excluded(seed_tenant), Bound::Unbounded))
                .map(|(t, _)| *t)
                .collect();
            order.extend(
                st.queues
                    .range((Bound::Unbounded, Bound::Included(seed_tenant)))
                    .map(|(t, _)| *t),
            );
            let mut extras = window;
            // Each pass takes at most one query per tenant; repeat until the
            // window is full or nothing matched.
            while extras > 0 {
                let mut took = false;
                for t in &order {
                    if extras == 0 {
                        break;
                    }
                    let Some(q) = st.queues.get_mut(t) else {
                        continue;
                    };
                    let Some(pos) = q
                        .iter()
                        .position(|p| p.query.table == table && !p.query.pushdown)
                    else {
                        continue;
                    };
                    if let Some(p) = q.remove(pos) {
                        items.push(p);
                        extras -= 1;
                        took = true;
                    }
                }
                if !took {
                    break;
                }
            }
            st.depth -= items.len() - 1;
        }
        let id = st.next_batch;
        st.next_batch += 1;
        (Batch { id, items }, st.depth)
    };
    shared
        .obs
        .metrics
        .gauge("serve.queue.depth")
        .set(depth_after as i64);
    Some(batch)
}

/// Executes a snapshotted batch (no queue lock held), delivers each reply,
/// and records the per-tenant telemetry. Returns the number of queries
/// served.
fn run_batch(shared: &Shared, batch: Batch) -> usize {
    let Batch { id, items } = batch;
    let n = items.len();
    let table = items
        .first()
        .map(|p| p.query.table.clone())
        .unwrap_or_default();
    let distinct: BTreeSet<TenantId> = items.iter().map(|p| p.tenant).collect();
    shared.obs.metrics.counter("serve.batches").inc();
    shared
        .obs
        .metrics
        .counter("serve.batched_queries")
        .add(n as u64);
    shared.obs.event(ObsEvent::BatchFormed {
        batch: id,
        table: table.clone(),
        queries: n as u64,
        tenants: distinct.len() as u64,
    });

    let engine = shared.session.engine();
    let results: Vec<Result<QueryOutcome>> = if n == 1 {
        items
            .iter()
            .map(|p| engine.execute_for_tenant(&p.query, Some(p.tenant)))
            .collect()
    } else {
        let queries: Vec<Query> = items.iter().map(|p| p.query.clone()).collect();
        let tenants: Vec<u64> = items.iter().map(|p| p.tenant).collect();
        match engine.execute_shared_for_tenants(&queries, &tenants, id) {
            Ok(shared_outcome) => shared_outcome.outcomes.into_iter().map(Ok).collect(),
            // A whole-scan failure answers every batched query with the same
            // error; nothing is silently dropped.
            Err(e) => items.iter().map(|_| Err(e.clone())).collect(),
        }
    };
    // Degradation is operator-level (a permanent device fault flips the scan
    // to external-table mode); sampling it at completion attributes the
    // degraded state to every tenant whose query just ran under it.
    let degraded = engine
        .operator(&table)
        .map(|op| op.load_degraded())
        .unwrap_or(false);
    let finished = now(shared);
    for (p, result) in items.into_iter().zip(results) {
        let latency = finished.saturating_sub(p.admitted_at);
        shared
            .obs
            .metrics
            .duration_histogram(&format!("serve.tenant.{}.latency.nanos", p.tenant))
            .observe_duration(latency);
        shared.obs.metrics.counter("serve.completed").inc();
        shared.obs.event(ObsEvent::QueryServed {
            tenant: p.tenant,
            batch: id,
            latency_micros: latency.as_micros() as u64,
            degraded,
        });
        // A receiver gone just means the caller dropped its ticket.
        let _ = p.reply.send(result);
    }
    n
}
