//! Boolean predicates: comparisons, SQL LIKE, boolean combinators.
//!
//! The genomic workload of paper §5.2 is "a group-by aggregate query with a
//! pattern matching predicate" — [`Predicate::Like`] provides the pattern
//! matching (`%` = any sequence, `_` = any single character).

use crate::expr::{Col, Expr};
use scanraw_types::{BinaryChunk, RangePredicate, Result, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A boolean predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Cmp(Expr, CmpOp, Expr),
    /// SQL LIKE over a string column: `%` any run, `_` any char.
    Like(Col, String),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column BETWEEN lo AND hi` (inclusive).
    pub fn between(
        column: impl Into<Col>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Predicate {
        let column = column.into();
        Predicate::And(
            Box::new(Predicate::Cmp(
                Expr::col(column),
                CmpOp::Ge,
                Expr::lit(lo.into()),
            )),
            Box::new(Predicate::Cmp(
                Expr::col(column),
                CmpOp::Le,
                Expr::lit(hi.into()),
            )),
        )
    }

    /// `column LIKE pattern` (`%` any run, `_` one char).
    pub fn like(column: impl Into<Col>, pattern: impl Into<String>) -> Predicate {
        Predicate::Like(column.into(), pattern.into())
    }

    /// Columns referenced by the predicate (sorted, deduplicated).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::Cmp(a, _, b) => {
                out.extend(a.columns());
                out.extend(b.columns());
            }
            Predicate::Like(c, _) => out.push(c.index()),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Evaluates the predicate for one row.
    pub fn eval(&self, chunk: &BinaryChunk, row: usize) -> Result<bool> {
        match self {
            Predicate::Cmp(a, op, b) => {
                let (x, y) = (a.eval(chunk, row)?, b.eval(chunk, row)?);
                Ok(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                })
            }
            Predicate::Like(col, pattern) => {
                let v = Expr::col(*col).eval(chunk, row)?;
                Ok(match v.as_str() {
                    Some(s) => like_match(pattern.as_bytes(), s.as_bytes()),
                    None => false,
                })
            }
            Predicate::And(a, b) => Ok(a.eval(chunk, row)? && b.eval(chunk, row)?),
            Predicate::Or(a, b) => Ok(a.eval(chunk, row)? || b.eval(chunk, row)?),
            Predicate::Not(p) => Ok(!p.eval(chunk, row)?),
        }
    }

    /// Evaluates the predicate against a bag of column values (`cols[i]`
    /// holds `values[i]`) — the push-down selection entry point.
    pub fn eval_values(&self, cols: &[usize], values: &[Value]) -> Result<bool> {
        match self {
            Predicate::Cmp(a, op, b) => {
                let (x, y) = (a.eval_values(cols, values)?, b.eval_values(cols, values)?);
                Ok(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                })
            }
            Predicate::Like(col, pattern) => {
                let v = Expr::col(*col).eval_values(cols, values)?;
                Ok(match v.as_str() {
                    Some(s) => like_match(pattern.as_bytes(), s.as_bytes()),
                    None => false,
                })
            }
            Predicate::And(a, b) => {
                Ok(a.eval_values(cols, values)? && b.eval_values(cols, values)?)
            }
            Predicate::Or(a, b) => Ok(a.eval_values(cols, values)? || b.eval_values(cols, values)?),
            Predicate::Not(p) => Ok(!p.eval_values(cols, values)?),
        }
    }

    /// Best-effort extraction of a single-column value range usable for
    /// chunk skipping via catalog min/max statistics. Conservative: returns
    /// `None` whenever the predicate cannot be *exactly* summarized by one
    /// range (the scan then reads every chunk and the row filter stays
    /// authoritative).
    pub fn extract_range(&self) -> Option<RangePredicate> {
        use std::ops::Bound;
        match self {
            Predicate::Cmp(Expr::Column(c), op, Expr::Literal(v)) => {
                let (low, high) = match op {
                    CmpOp::Eq => (Bound::Included(v.clone()), Bound::Included(v.clone())),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v.clone())),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(v.clone())),
                    CmpOp::Gt => (Bound::Excluded(v.clone()), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Included(v.clone()), Bound::Unbounded),
                    CmpOp::Ne => return None,
                };
                Some(RangePredicate {
                    column: c.index(),
                    low,
                    high,
                })
            }
            // Mirror image: literal op column.
            Predicate::Cmp(Expr::Literal(v), op, Expr::Column(c)) => {
                let flipped = match op {
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Ne => CmpOp::Ne,
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                };
                Predicate::Cmp(Expr::Column(*c), flipped, Expr::Literal(v.clone())).extract_range()
            }
            Predicate::And(a, b) => {
                // Intersect two ranges over the same column, or pass one
                // side through when only one side is range-expressible.
                match (a.extract_range(), b.extract_range()) {
                    (Some(ra), Some(rb)) if ra.column == rb.column => Some(RangePredicate {
                        column: ra.column,
                        low: tighter_low(ra.low, rb.low),
                        high: tighter_high(ra.high, rb.high),
                    }),
                    (Some(ra), None) => Some(ra),
                    (None, Some(rb)) => Some(rb),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

fn tighter_low(a: std::ops::Bound<Value>, b: std::ops::Bound<Value>) -> std::ops::Bound<Value> {
    use std::ops::Bound::*;
    match (a, b) {
        (Unbounded, x) | (x, Unbounded) => x,
        (Included(x), Included(y)) => Included(x.max(y)),
        (Excluded(x), Excluded(y)) => Excluded(x.max(y)),
        (Included(x), Excluded(y)) | (Excluded(y), Included(x)) => {
            if y >= x {
                Excluded(y)
            } else {
                Included(x)
            }
        }
    }
}

fn tighter_high(a: std::ops::Bound<Value>, b: std::ops::Bound<Value>) -> std::ops::Bound<Value> {
    use std::ops::Bound::*;
    match (a, b) {
        (Unbounded, x) | (x, Unbounded) => x,
        (Included(x), Included(y)) => Included(x.min(y)),
        (Excluded(x), Excluded(y)) => Excluded(x.min(y)),
        (Included(x), Excluded(y)) | (Excluded(y), Included(x)) => {
            if y <= x {
                Excluded(y)
            } else {
                Included(x)
            }
        }
    }
}

/// Iterative SQL-LIKE matcher (`%` any run, `_` one char), O(n·m) worst case
/// with the classic two-pointer backtracking technique. Shared with the
/// columnar kernels in `parallel` so both paths match identically.
pub(crate) fn like_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'_' || pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'%' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            p = star_p + 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'%' {
        p += 1;
    }
    p == pattern.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::{ChunkId, ColumnData};

    fn chunk() -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 3,
            columns: vec![
                Some(ColumnData::Int64(vec![5, 10, 15])),
                Some(ColumnData::Utf8(vec![
                    "100M".into(),
                    "50M2I48M".into(),
                    "10S90M".into(),
                ])),
            ],
        }
    }

    #[test]
    fn comparisons() {
        let c = chunk();
        let p = Predicate::Cmp(Expr::col(0), CmpOp::Gt, Expr::lit(7i64));
        assert!(!p.eval(&c, 0).unwrap());
        assert!(p.eval(&c, 1).unwrap());
        let p = Predicate::Cmp(Expr::col(0), CmpOp::Eq, Expr::lit(15i64));
        assert!(p.eval(&c, 2).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let c = chunk();
        let p = Predicate::between(0, 6i64, 12i64);
        assert!(!p.eval(&c, 0).unwrap());
        assert!(p.eval(&c, 1).unwrap());
        let n = Predicate::Not(Box::new(p.clone()));
        assert!(n.eval(&c, 0).unwrap());
        let o = Predicate::Or(
            Box::new(p),
            Box::new(Predicate::Cmp(Expr::col(0), CmpOp::Eq, Expr::lit(5i64))),
        );
        assert!(o.eval(&c, 0).unwrap());
    }

    #[test]
    fn like_basics() {
        assert!(like_match(b"100M", b"100M"));
        assert!(!like_match(b"100M", b"101M"));
        assert!(like_match(b"%M", b"100M"));
        assert!(like_match(b"%2I%", b"50M2I48M"));
        assert!(like_match(b"1_S%", b"10S90M"));
        assert!(!like_match(b"%2I%", b"100M"));
        assert!(like_match(b"%", b""));
        assert!(like_match(b"%%", b"x"));
        assert!(!like_match(b"_", b""));
    }

    #[test]
    fn like_predicate_on_strings() {
        let c = chunk();
        let p = Predicate::like(1, "%I%");
        assert!(!p.eval(&c, 0).unwrap());
        assert!(p.eval(&c, 1).unwrap());
        // LIKE on a non-string column is simply false.
        let p = Predicate::like(0, "%");
        assert!(!p.eval(&c, 0).unwrap());
    }

    #[test]
    fn range_extraction_simple() {
        let p = Predicate::Cmp(Expr::col(2), CmpOp::Ge, Expr::lit(10i64));
        let r = p.extract_range().unwrap();
        assert_eq!(r.column, 2);
        assert!(r.contains(&Value::Int(10)));
        assert!(!r.contains(&Value::Int(9)));
    }

    #[test]
    fn range_extraction_between() {
        let p = Predicate::between(1, 10i64, 20i64);
        let r = p.extract_range().unwrap();
        assert!(r.contains(&Value::Int(10)));
        assert!(r.contains(&Value::Int(20)));
        assert!(!r.contains(&Value::Int(21)));
    }

    #[test]
    fn range_extraction_flipped_literal() {
        // 10 <= col3  ⇔  col3 >= 10
        let p = Predicate::Cmp(Expr::lit(10i64), CmpOp::Le, Expr::col(3));
        let r = p.extract_range().unwrap();
        assert_eq!(r.column, 3);
        assert!(r.contains(&Value::Int(11)));
        assert!(!r.contains(&Value::Int(9)));
    }

    #[test]
    fn no_range_for_disjunction_or_ne() {
        let p = Predicate::Or(
            Box::new(Predicate::between(0, 1i64, 2i64)),
            Box::new(Predicate::between(0, 8i64, 9i64)),
        );
        assert!(p.extract_range().is_none());
        let p = Predicate::Cmp(Expr::col(0), CmpOp::Ne, Expr::lit(1i64));
        assert!(p.extract_range().is_none());
    }

    #[test]
    fn predicate_columns() {
        let p = Predicate::And(
            Box::new(Predicate::like(5, "%M")),
            Box::new(Predicate::between(3, 0i64, 9i64)),
        );
        assert_eq!(p.columns(), vec![3, 5]);
    }
}
