//! Query execution over BAM-sim files through the sequential reader library.
//!
//! This is the paper's Table 1 BAM configuration: "for BAM file processing,
//! we use BAMTools to extract the tuples from binary and implement only MAP
//! in ScanRaw". Records come out of [`BamReader`] one at a time — sequential
//! I/O and sequential decompression in the calling thread — and MAP batches
//! them into columnar [`BinaryChunk`]s that feed the same aggregation logic
//! the text path uses. There is deliberately no pipeline parallelism here;
//! that is the point of the comparison.

use crate::executor::GroupedAggregator;
use crate::query::{Query, QueryResult};
use scanraw_rawfile::bamsim::BamReader;
use scanraw_rawfile::sam::{sam_schema, SamRead};
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, ColumnData, Error, Result};

/// Rows per MAP batch.
pub const MAP_BATCH: usize = 16 * 1024;

/// MAP: organizes a batch of reader records into the columnar processing
/// representation (the only conversion stage on the BAM path).
pub fn map_reads(batch: &[SamRead], id: ChunkId, first_row: u64) -> BinaryChunk {
    let mut qname = Vec::with_capacity(batch.len());
    let mut flag = Vec::with_capacity(batch.len());
    let mut rname = Vec::with_capacity(batch.len());
    let mut pos = Vec::with_capacity(batch.len());
    let mut mapq = Vec::with_capacity(batch.len());
    let mut cigar = Vec::with_capacity(batch.len());
    let mut rnext = Vec::with_capacity(batch.len());
    let mut pnext = Vec::with_capacity(batch.len());
    let mut tlen = Vec::with_capacity(batch.len());
    let mut seq = Vec::with_capacity(batch.len());
    let mut qual = Vec::with_capacity(batch.len());
    for r in batch {
        qname.push(r.qname.clone());
        flag.push(r.flag);
        rname.push(r.rname.clone());
        pos.push(r.pos);
        mapq.push(r.mapq);
        cigar.push(r.cigar.clone());
        rnext.push(r.rnext.clone());
        pnext.push(r.pnext);
        tlen.push(r.tlen);
        seq.push(r.seq.clone());
        qual.push(r.qual.clone());
    }
    BinaryChunk {
        id,
        first_row,
        rows: batch.len() as u32,
        columns: vec![
            Some(ColumnData::Utf8(qname)),
            Some(ColumnData::Int64(flag)),
            Some(ColumnData::Utf8(rname)),
            Some(ColumnData::Int64(pos)),
            Some(ColumnData::Int64(mapq)),
            Some(ColumnData::Utf8(cigar)),
            Some(ColumnData::Utf8(rnext)),
            Some(ColumnData::Int64(pnext)),
            Some(ColumnData::Int64(tlen)),
            Some(ColumnData::Utf8(seq)),
            Some(ColumnData::Utf8(qual)),
        ],
    }
}

/// Executes an aggregate query over a BAM-sim file, sequentially.
///
/// The query's `table` field is ignored; column indices refer to the SAM
/// schema ([`sam_schema`]).
pub fn execute_over_bam(disk: &SimDisk, file: &str, query: &Query) -> Result<QueryResult> {
    if query.aggregates.is_empty() {
        return Err(Error::query("query needs at least one aggregate"));
    }
    // Validate column references early against the SAM schema.
    let n_cols = sam_schema().len();
    if let Some(&max) = query.required_columns().last() {
        if max >= n_cols {
            return Err(Error::query(format!(
                "column {max} out of range for SAM schema of {n_cols}"
            )));
        }
    }
    let clock = disk.clock().clone();
    let started = clock.now();
    let mut reader = BamReader::open(disk.clone(), file)?;
    let mut agg = GroupedAggregator::new(&query.group_by, &query.aggregates);
    let mut batch: Vec<SamRead> = Vec::with_capacity(MAP_BATCH);
    let mut chunk_no = 0u32;
    let mut first_row = 0u64;
    let flush = |batch: &mut Vec<SamRead>,
                 chunk_no: &mut u32,
                 first_row: &mut u64,
                 agg: &mut GroupedAggregator<'_>|
     -> Result<()> {
        let chunk = map_reads(batch, ChunkId(*chunk_no), *first_row);
        agg.consume(&chunk, query.filter.as_ref())?;
        *first_row += batch.len() as u64;
        *chunk_no += 1;
        batch.clear();
        Ok(())
    };
    loop {
        match reader.next_read()? {
            Some(r) => {
                batch.push(r);
                if batch.len() == MAP_BATCH {
                    flush(&mut batch, &mut chunk_no, &mut first_row, &mut agg)?;
                }
            }
            None => {
                if !batch.is_empty() {
                    flush(&mut batch, &mut chunk_no, &mut first_row, &mut agg)?;
                }
                break;
            }
        }
    }
    let rows_scanned = agg.rows_seen();
    let rows = agg.finish()?;
    Ok(QueryResult {
        rows,
        rows_scanned,
        elapsed: clock.now().saturating_sub(started),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggExpr;
    use crate::expr::Expr;
    use scanraw_rawfile::bamsim::stage_bam;
    use scanraw_rawfile::sam::{field, generate_reads, SamSpec};
    use scanraw_types::Value;

    #[test]
    fn map_preserves_fields() {
        let reads = generate_reads(&SamSpec {
            reads: 5,
            ..Default::default()
        });
        let chunk = map_reads(&reads, ChunkId(0), 0);
        assert_eq!(chunk.rows, 5);
        for (i, r) in reads.iter().enumerate() {
            assert_eq!(
                chunk.column(field::CIGAR).unwrap().value(i).unwrap(),
                Value::Str(r.cigar.clone())
            );
            assert_eq!(
                chunk.column(field::POS).unwrap().value(i).unwrap(),
                Value::Int(r.pos)
            );
        }
    }

    #[test]
    fn bam_query_counts_all_reads() {
        let disk = SimDisk::instant();
        let reads = generate_reads(&SamSpec {
            reads: 1000,
            read_len: 30,
            ..Default::default()
        });
        stage_bam(&disk, "x.bam", &reads);
        let q = Query {
            table: "ignored".into(),
            filter: None,
            group_by: vec![],
            aggregates: vec![AggExpr::count()],
            pushdown: false,
            projection: None,
        };
        let r = execute_over_bam(&disk, "x.bam", &q).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1000)));
    }

    #[test]
    fn bam_sum_matches_direct_computation() {
        let disk = SimDisk::instant();
        let reads = generate_reads(&SamSpec {
            reads: 500,
            read_len: 20,
            ..Default::default()
        });
        stage_bam(&disk, "x.bam", &reads);
        let expected: i64 = reads.iter().map(|r| r.pos).sum();
        let q = Query {
            table: "ignored".into(),
            filter: None,
            group_by: vec![],
            aggregates: vec![AggExpr::sum(Expr::col(field::POS))],
            pushdown: false,
            projection: None,
        };
        let r = execute_over_bam(&disk, "x.bam", &q).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(expected)));
    }

    #[test]
    fn column_out_of_range_rejected() {
        let disk = SimDisk::instant();
        stage_bam(&disk, "x.bam", &[]);
        let q = Query {
            table: "ignored".into(),
            filter: None,
            group_by: vec![],
            aggregates: vec![AggExpr::sum(Expr::col(99))],
            pushdown: false,
            projection: None,
        };
        assert!(execute_over_bam(&disk, "x.bam", &q).is_err());
    }
}
