//! A columnar query execution engine running over the ScanRaw operator.
//!
//! The paper integrates ScanRaw with the DataPath system and evaluates SQL
//! aggregate queries (`SELECT SUM(ΣCi) FROM file`, and a group-by aggregate
//! with a pattern-matching predicate for the genomic workload). This crate
//! provides exactly that slice of an execution engine:
//!
//! * [`expr`] — scalar expressions over chunk rows (column refs, literals,
//!   arithmetic);
//! * [`predicate`] — boolean predicates (comparisons, SQL-`LIKE` pattern
//!   matching, conjunction/disjunction) plus best-effort extraction of a
//!   range for chunk skipping;
//! * [`aggregate`] — SUM / COUNT / MIN / MAX / AVG accumulators;
//! * [`query`] — the query description and result types;
//! * [`executor`] — the low-level [`executor::Engine`]: plans the scan
//!   (projection, convert scope, skip predicate), pulls chunks from ScanRaw,
//!   filters, and folds aggregates — serially or chunk-parallel on the
//!   operator's worker pool ([`executor::ExecMode`]);
//! * `parallel` — the columnar kernels and mergeable partial-aggregate
//!   state behind parallel execution (crate-internal);
//! * [`session`] — the [`Session`] facade: the high-level entry point
//!   wrapping engine construction, registration, execution, and recovery;
//! * [`serve`] — the multi-tenant serving layer over one `Arc<Session>`:
//!   bounded admission with [`Error::Overloaded`](scanraw_types::Error)
//!   rejection, round-robin tenant fairness, and automatic shared-scan
//!   batching ([`Server`]);
//! * [`bamscan`] — the Table 1 binary path: the same query logic driven by
//!   the *sequential* BAM-sim reader, where ScanRaw only performs MAP.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod aggregate;
pub mod bamscan;
pub mod executor;
pub mod expr;
mod parallel;
pub mod predicate;
pub mod query;
pub mod serve;
pub mod session;

pub use aggregate::{AggExpr, AggFunc};
pub use executor::{AnalyzeReport, Engine, ExecMode, ExplainReport, QueryOutcome, SharedOutcome};
pub use expr::{Col, Expr};
pub use predicate::Predicate;
pub use query::{Query, QueryBuilder, QueryResult};
pub use serve::{ServeConfig, ServeCounters, Server, TenantId, Ticket};
pub use session::{ExecOutcome, ExecRequest, Session};
