//! [`Session`] — the high-level entry point for querying raw files.
//!
//! A session owns one engine over one simulated disk/database and exposes
//! the whole register → query → inspect → recover lifecycle through a
//! single type, so typical programs never touch [`Engine`], the operator
//! registry, or the database plumbing directly. [`Engine`] remains public
//! as the low-level API for callers that need to reach the operator layer
//! (custom convert scopes, direct registry access).
//!
//! ```no_run
//! use scanraw_engine::{ExecRequest, Query, Session};
//! use scanraw_rawfile::TextDialect;
//! use scanraw_simio::SimDisk;
//! use scanraw_types::{ScanRawConfig, Schema};
//!
//! let session = Session::open(SimDisk::instant());
//! session
//!     .register_table(
//!         "t",
//!         "data.csv",
//!         Schema::uniform_ints(4),
//!         TextDialect::CSV,
//!         ScanRawConfig::default(),
//!     )
//!     .unwrap();
//! let outcome = session
//!     .run(ExecRequest::query(Query::sum_of_columns("t", 0..4)))
//!     .unwrap()
//!     .into_single();
//! println!("{:?}", outcome.result.scalar());
//! ```

use crate::executor::{
    AnalyzeReport, Engine, ExecMode, ExplainReport, QueryOutcome, SharedOutcome,
};
use crate::expr::Col;
use crate::query::Query;
use crate::serve::{ServeConfig, Server};
use scanraw_obs::QueryTrace;
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::{Database, RecoveryReport};
use scanraw_types::{Error, Result, ScanRawConfig, Schema};
use std::sync::Arc;

/// One execution request: a single query or a shared-scan batch, plus how to
/// run it — per-request exec-mode override, tracing, widened projection.
///
/// This is the single entry point that replaces the old
/// `execute`/`execute_traced`/`execute_shared`/`execute_shared_traced` ×
/// [`ExecMode`] matrix: build a request, hand it to [`Session::run`].
///
/// ```ignore
/// let out = session.run(
///     ExecRequest::query(q).traced().mode(ExecMode::Serial),
/// )?;
/// ```
#[derive(Debug, Clone)]
pub struct ExecRequest {
    queries: Vec<Query>,
    shared: bool,
    traced: bool,
    mode: Option<ExecMode>,
}

impl ExecRequest {
    /// A request running one query on its own scan.
    pub fn query(q: Query) -> Self {
        ExecRequest {
            queries: vec![q],
            shared: false,
            traced: false,
            mode: None,
        }
    }

    /// A request answering a batch of same-table queries with one shared
    /// scan (see [`Engine::execute_shared`] for the restrictions).
    pub fn batch(queries: impl IntoIterator<Item = Query>) -> Self {
        ExecRequest {
            queries: queries.into_iter().collect(),
            shared: true,
            traced: false,
            mode: None,
        }
    }

    /// Collect the causal span tree(s) the request mints. [`Session::run`]
    /// then fails when tracing is disabled on the table's recorder.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Override the chunk-fold strategy for this request only; the session
    /// default applies otherwise.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Set an explicit projection on every query in the request (see
    /// [`Query::select`]): the scan materializes these columns in addition
    /// to the referenced ones, pre-heating them for speculative loading.
    pub fn select(mut self, cols: impl IntoIterator<Item = impl Into<Col>>) -> Self {
        let cols: Vec<Col> = cols.into_iter().map(Into::into).collect();
        for q in &mut self.queries {
            q.projection = Some(cols.clone());
        }
        self
    }
}

/// What [`Session::run`] produced: one [`QueryOutcome`] per query in the
/// request, with span trees alongside when the request was
/// [`ExecRequest::traced`].
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// One outcome per query, in request order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-query span trees, parallel to `outcomes`; `None` entries unless
    /// the request was traced.
    pub query_traces: Vec<Option<QueryTrace>>,
    /// The carrier trace of a traced shared batch (scan/exec/merge spans);
    /// `None` for single queries and untraced batches.
    pub batch_trace: Option<QueryTrace>,
}

impl ExecOutcome {
    /// The only outcome of a single-query request.
    ///
    /// # Panics
    ///
    /// Panics when called on the outcome of a multi-query batch.
    pub fn into_single(mut self) -> QueryOutcome {
        assert_eq!(
            self.outcomes.len(),
            1,
            "into_single on a {}-query outcome",
            self.outcomes.len()
        );
        self.outcomes.pop().expect("one outcome")
    }

    /// The span tree of a traced single-query request.
    pub fn into_traced_single(mut self) -> (QueryOutcome, QueryTrace) {
        assert_eq!(self.outcomes.len(), 1, "into_traced_single on a batch");
        let outcome = self.outcomes.pop().expect("one outcome");
        let trace = self
            .query_traces
            .pop()
            .flatten()
            .expect("request was not traced");
        (outcome, trace)
    }
}

/// High-level query session: the single public entry point wrapping engine
/// construction, table registration, execution, plan inspection, and crash
/// recovery.
///
/// A session is `Send + Sync`: every piece of engine state (catalog, chunk
/// cache, loaded bitmaps, operator registry, exec mode) is interior-mutable
/// behind its own lock, so one session can be shared across threads in an
/// [`Arc`] and queried concurrently — or put behind a [`Server`] (see
/// [`Session::serve`]) for admission control, per-tenant fairness, and
/// automatic shared-scan batching.
pub struct Session {
    engine: Engine,
}

// The whole point of the serving layer: one session, many threads. A
// compile-time check so a non-Sync field can never sneak back in.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Session>();
};

impl Session {
    /// Opens a session over a fresh database on the given disk.
    pub fn open(disk: SimDisk) -> Self {
        Session::new(Database::new(disk))
    }

    /// Opens a session over an existing database (e.g. after a simulated
    /// restart, before calling [`Session::recover_table`]).
    pub fn new(db: Database) -> Self {
        Session {
            engine: Engine::new(db),
        }
    }

    /// Switches the chunk-fold strategy (parallel by default); chainable at
    /// construction time.
    pub fn with_exec_mode(self, mode: ExecMode) -> Self {
        self.engine.set_exec_mode(mode);
        self
    }

    /// Switches the chunk-fold strategy for queries that start from now on.
    /// Safe on a shared session: each in-flight query keeps the mode it
    /// sampled at entry.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        self.engine.set_exec_mode(mode);
    }

    /// The current chunk-fold strategy.
    pub fn exec_mode(&self) -> ExecMode {
        self.engine.exec_mode()
    }

    /// Starts a serving front over this session: bounded admission,
    /// round-robin tenant fairness, and shared-scan batching. See
    /// [`crate::serve`].
    pub fn serve(self: &Arc<Self>, config: ServeConfig) -> Result<Server> {
        Server::start(Arc::clone(self), config)
    }

    /// Registers a raw file as a queryable table.
    ///
    /// # Errors
    ///
    /// Fails on an invalid configuration or a duplicate table name.
    pub fn register_table(
        &self,
        name: impl Into<String>,
        raw_file: impl Into<String>,
        schema: Schema,
        dialect: TextDialect,
        config: ScanRawConfig,
    ) -> Result<()> {
        self.engine
            .register_table(name, raw_file, schema, dialect, config)
    }

    /// Runs an [`ExecRequest`]: one query or a shared-scan batch, with
    /// per-request exec-mode, tracing, and projection options. This is the
    /// session's single execution entry point; the deprecated
    /// `execute*` methods are thin wrappers over it.
    ///
    /// # Errors
    ///
    /// Fails when any query fails validation or execution, when the request
    /// holds no query, or when it is [`ExecRequest::traced`] but tracing is
    /// disabled on the table's span recorder
    /// (`op.obs().trace.set_enabled(false)`).
    pub fn run(&self, req: ExecRequest) -> Result<ExecOutcome> {
        let ExecRequest {
            queries,
            shared,
            traced,
            mode,
        } = req;
        if shared {
            let out = self
                .engine
                .execute_shared_inner(&queries, None, None, mode)?;
            if !traced {
                let n = out.outcomes.len();
                return Ok(ExecOutcome {
                    outcomes: out.outcomes,
                    query_traces: vec![None; n],
                    batch_trace: None,
                });
            }
            let table = &queries.first().expect("batch validated non-empty").table;
            let op = self.engine.operator(table)?;
            if out.batch_trace.is_none() {
                return Err(Error::query("tracing is disabled on this table's recorder"));
            }
            // Pending write-backs would leave open spans in the trees.
            op.drain_writes();
            Ok(ExecOutcome {
                query_traces: out
                    .query_traces
                    .iter()
                    .map(|t| t.map(|t| op.obs().trace.trace(t)))
                    .collect(),
                batch_trace: out.batch_trace.map(|t| op.obs().trace.trace(t)),
                outcomes: out.outcomes,
            })
        } else {
            let query = queries
                .into_iter()
                .next()
                .ok_or_else(|| Error::query("ExecRequest holds no query"))?;
            // The trace id travels back with the outcome (instead of reading
            // the engine-wide "last trace" slot) so concurrent callers on a
            // shared session always get their *own* span tree.
            let (outcome, trace_id) = self.engine.execute_inner(&query, None, mode)?;
            let query_traces = if traced {
                let trace_id = trace_id
                    .ok_or_else(|| Error::query("tracing is disabled on this table's recorder"))?;
                let op = self.engine.operator(&query.table)?;
                op.drain_writes();
                vec![Some(op.obs().trace.trace(trace_id))]
            } else {
                vec![None]
            };
            Ok(ExecOutcome {
                outcomes: vec![outcome],
                query_traces,
                batch_trace: None,
            })
        }
    }

    /// Runs an aggregate query. See [`Engine::execute`].
    #[deprecated(note = "build an `ExecRequest::query` and call `Session::run`")]
    pub fn execute(&self, query: &Query) -> Result<QueryOutcome> {
        self.run(ExecRequest::query(query.clone()))
            .map(ExecOutcome::into_single)
    }

    /// Answers a batch of queries over the same table with one shared scan.
    /// See [`Engine::execute_shared`].
    #[deprecated(note = "build an `ExecRequest::batch` and call `Session::run`")]
    pub fn execute_shared(&self, queries: &[Query]) -> Result<Vec<QueryOutcome>> {
        self.run(ExecRequest::batch(queries.to_vec()))
            .map(|out| out.outcomes)
    }

    /// [`Session::run`] with a traced batch, returning raw trace ids rather
    /// than extracted trees. See [`Engine::execute_shared_traced`].
    #[deprecated(note = "build a traced `ExecRequest::batch` and call `Session::run`")]
    pub fn execute_shared_traced(&self, queries: &[Query]) -> Result<SharedOutcome> {
        self.engine.execute_shared_traced(queries)
    }

    /// Runs a query and returns its outcome together with the causal span
    /// tree of everything the query did — scan, per-chunk reads and
    /// conversions, consumer-side execution, the merge, write-backs, disk
    /// operations, retries, and fallbacks. Pending write-backs are drained
    /// first so every span in the tree is closed.
    ///
    /// # Errors
    ///
    /// Fails when the query fails, or when tracing is disabled on the
    /// table's span recorder (`op.obs().trace.set_enabled(false)`).
    #[deprecated(note = "build a traced `ExecRequest::query` and call `Session::run`")]
    pub fn execute_traced(&self, query: &Query) -> Result<(QueryOutcome, QueryTrace)> {
        self.run(ExecRequest::query(query.clone()).traced())
            .map(ExecOutcome::into_traced_single)
    }

    /// The span tree of the most recently completed traced query, or `None`
    /// when no traced query has run. Drains `table`'s pending write-backs
    /// first so late `write.chunk` spans are closed in the returned tree.
    pub fn last_trace(&self, table: &str) -> Option<QueryTrace> {
        if let Ok(op) = self.engine.operator(table) {
            op.drain_writes();
        }
        self.engine.last_query_trace()
    }

    /// Explains a query without running it. See [`Engine::explain`].
    pub fn explain(&self, query: &Query) -> Result<ExplainReport> {
        self.engine.explain(query)
    }

    /// `EXPLAIN ANALYZE`: runs the query and reports plan vs. observed
    /// behaviour. See [`Engine::explain_analyze`].
    pub fn explain_analyze(&self, query: &Query) -> Result<AnalyzeReport> {
        self.engine.explain_analyze(query)
    }

    /// Rebuilds a table's loaded state from its commit log after a simulated
    /// crash. See [`Engine::recover_table`].
    pub fn recover_table(&self, table: &str) -> Result<RecoveryReport> {
        self.engine.recover_table(table)
    }

    /// The underlying low-level engine, for operator/registry access.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The database the session runs over.
    pub fn database(&self) -> &Database {
        self.engine.database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_rawfile::generate::{stage_csv, CsvSpec};
    use scanraw_types::Value;

    #[test]
    fn session_lifecycle() {
        let disk = SimDisk::instant();
        let spec = CsvSpec::new(1_000, 3, 7);
        stage_csv(&disk, "t.csv", &spec);
        let session = Session::open(disk);
        session
            .register_table(
                "t",
                "t.csv",
                Schema::uniform_ints(3),
                TextDialect::CSV,
                ScanRawConfig::default().with_chunk_rows(200),
            )
            .unwrap();
        let q = Query::sum_of_columns("t", 0..3);
        let explain = session.explain(&q).unwrap();
        assert_eq!(explain.projection, vec![0, 1, 2]);
        let outcome = session.run(ExecRequest::query(q)).unwrap().into_single();
        assert_eq!(outcome.result.rows_scanned, 1_000);
        assert!(matches!(outcome.result.scalar(), Some(Value::Int(_))));
    }

    #[test]
    fn deprecated_shims_agree_with_run() {
        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &CsvSpec::new(500, 2, 3));
        let session = Session::open(disk);
        session
            .register_table(
                "t",
                "t.csv",
                Schema::uniform_ints(2),
                TextDialect::CSV,
                ScanRawConfig::default().with_chunk_rows(100),
            )
            .unwrap();
        let q = Query::sum_of_columns("t", 0..2);
        let via_run = session
            .run(ExecRequest::query(q.clone()))
            .unwrap()
            .into_single();
        #[allow(deprecated)]
        let via_shim = session.execute(&q).unwrap();
        assert_eq!(via_run.result.rows, via_shim.result.rows);
        let batch = session
            .run(ExecRequest::batch(vec![q.clone(), q.clone()]))
            .unwrap();
        assert_eq!(batch.outcomes.len(), 2);
        assert_eq!(batch.outcomes[0].result.rows, via_run.result.rows);
        // Per-request mode override answers identically.
        let serial = session
            .run(ExecRequest::query(q).mode(ExecMode::Serial))
            .unwrap()
            .into_single();
        assert_eq!(serial.result.rows, via_run.result.rows);
    }

    #[test]
    fn session_exec_mode_toggle() {
        let session = Session::open(SimDisk::instant()).with_exec_mode(ExecMode::Serial);
        assert_eq!(session.exec_mode(), ExecMode::Serial);
    }
}
