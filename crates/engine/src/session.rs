//! [`Session`] — the high-level entry point for querying raw files.
//!
//! A session owns one engine over one simulated disk/database and exposes
//! the whole register → query → inspect → recover lifecycle through a
//! single type, so typical programs never touch [`Engine`], the operator
//! registry, or the database plumbing directly. [`Engine`] remains public
//! as the low-level API for callers that need to reach the operator layer
//! (custom convert scopes, direct registry access).
//!
//! ```no_run
//! use scanraw_engine::{Query, Session};
//! use scanraw_rawfile::TextDialect;
//! use scanraw_simio::SimDisk;
//! use scanraw_types::{ScanRawConfig, Schema};
//!
//! let session = Session::open(SimDisk::instant());
//! session
//!     .register_table(
//!         "t",
//!         "data.csv",
//!         Schema::uniform_ints(4),
//!         TextDialect::CSV,
//!         ScanRawConfig::default(),
//!     )
//!     .unwrap();
//! let outcome = session.execute(&Query::sum_of_columns("t", 0..4)).unwrap();
//! println!("{:?}", outcome.result.scalar());
//! ```

use crate::executor::{
    AnalyzeReport, Engine, ExecMode, ExplainReport, QueryOutcome, SharedOutcome,
};
use crate::query::Query;
use crate::serve::{ServeConfig, Server};
use scanraw_obs::QueryTrace;
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::{Database, RecoveryReport};
use scanraw_types::{Error, Result, ScanRawConfig, Schema};
use std::sync::Arc;

/// High-level query session: the single public entry point wrapping engine
/// construction, table registration, execution, plan inspection, and crash
/// recovery.
///
/// A session is `Send + Sync`: every piece of engine state (catalog, chunk
/// cache, loaded bitmaps, operator registry, exec mode) is interior-mutable
/// behind its own lock, so one session can be shared across threads in an
/// [`Arc`] and queried concurrently — or put behind a [`Server`] (see
/// [`Session::serve`]) for admission control, per-tenant fairness, and
/// automatic shared-scan batching.
pub struct Session {
    engine: Engine,
}

// The whole point of the serving layer: one session, many threads. A
// compile-time check so a non-Sync field can never sneak back in.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Session>();
};

impl Session {
    /// Opens a session over a fresh database on the given disk.
    pub fn open(disk: SimDisk) -> Self {
        Session::new(Database::new(disk))
    }

    /// Opens a session over an existing database (e.g. after a simulated
    /// restart, before calling [`Session::recover_table`]).
    pub fn new(db: Database) -> Self {
        Session {
            engine: Engine::new(db),
        }
    }

    /// Switches the chunk-fold strategy (parallel by default); chainable at
    /// construction time.
    pub fn with_exec_mode(self, mode: ExecMode) -> Self {
        self.engine.set_exec_mode(mode);
        self
    }

    /// Switches the chunk-fold strategy for queries that start from now on.
    /// Safe on a shared session: each in-flight query keeps the mode it
    /// sampled at entry.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        self.engine.set_exec_mode(mode);
    }

    /// The current chunk-fold strategy.
    pub fn exec_mode(&self) -> ExecMode {
        self.engine.exec_mode()
    }

    /// Starts a serving front over this session: bounded admission,
    /// round-robin tenant fairness, and shared-scan batching. See
    /// [`crate::serve`].
    pub fn serve(self: &Arc<Self>, config: ServeConfig) -> Result<Server> {
        Server::start(Arc::clone(self), config)
    }

    /// Registers a raw file as a queryable table.
    ///
    /// # Errors
    ///
    /// Fails on an invalid configuration or a duplicate table name.
    pub fn register_table(
        &self,
        name: impl Into<String>,
        raw_file: impl Into<String>,
        schema: Schema,
        dialect: TextDialect,
        config: ScanRawConfig,
    ) -> Result<()> {
        self.engine
            .register_table(name, raw_file, schema, dialect, config)
    }

    /// Runs an aggregate query. See [`Engine::execute`].
    pub fn execute(&self, query: &Query) -> Result<QueryOutcome> {
        self.engine.execute(query)
    }

    /// Answers a batch of queries over the same table with one shared scan.
    /// See [`Engine::execute_shared`].
    pub fn execute_shared(&self, queries: &[Query]) -> Result<Vec<QueryOutcome>> {
        self.engine.execute_shared(queries)
    }

    /// [`Session::execute_shared`] plus the traces the batch minted: the
    /// carrier trace (shared scan spans) and one root `query` span per
    /// batched query, so per-caller traces stay causal under batching. See
    /// [`Engine::execute_shared_traced`].
    pub fn execute_shared_traced(&self, queries: &[Query]) -> Result<SharedOutcome> {
        self.engine.execute_shared_traced(queries)
    }

    /// Runs a query and returns its outcome together with the causal span
    /// tree of everything the query did — scan, per-chunk reads and
    /// conversions, consumer-side execution, the merge, write-backs, disk
    /// operations, retries, and fallbacks. Pending write-backs are drained
    /// first so every span in the tree is closed.
    ///
    /// # Errors
    ///
    /// Fails when the query fails, or when tracing is disabled on the
    /// table's span recorder (`op.obs().trace.set_enabled(false)`).
    pub fn execute_traced(&self, query: &Query) -> Result<(QueryOutcome, QueryTrace)> {
        // The trace id travels back with the outcome (instead of reading the
        // engine-wide "last trace" slot) so concurrent callers on a shared
        // session always get their *own* span tree.
        let (outcome, trace_id) = self.engine.execute_inner(query, None)?;
        let trace_id =
            trace_id.ok_or_else(|| Error::query("tracing is disabled on this table's recorder"))?;
        let op = self.engine.operator(&query.table)?;
        op.drain_writes();
        Ok((outcome, op.obs().trace.trace(trace_id)))
    }

    /// The span tree of the most recently completed traced query, or `None`
    /// when no traced query has run. Drains `table`'s pending write-backs
    /// first so late `write.chunk` spans are closed in the returned tree.
    pub fn last_trace(&self, table: &str) -> Option<QueryTrace> {
        if let Ok(op) = self.engine.operator(table) {
            op.drain_writes();
        }
        self.engine.last_query_trace()
    }

    /// Explains a query without running it. See [`Engine::explain`].
    pub fn explain(&self, query: &Query) -> Result<ExplainReport> {
        self.engine.explain(query)
    }

    /// `EXPLAIN ANALYZE`: runs the query and reports plan vs. observed
    /// behaviour. See [`Engine::explain_analyze`].
    pub fn explain_analyze(&self, query: &Query) -> Result<AnalyzeReport> {
        self.engine.explain_analyze(query)
    }

    /// Rebuilds a table's loaded state from its commit log after a simulated
    /// crash. See [`Engine::recover_table`].
    pub fn recover_table(&self, table: &str) -> Result<RecoveryReport> {
        self.engine.recover_table(table)
    }

    /// The underlying low-level engine, for operator/registry access.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The database the session runs over.
    pub fn database(&self) -> &Database {
        self.engine.database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_rawfile::generate::{stage_csv, CsvSpec};
    use scanraw_types::Value;

    #[test]
    fn session_lifecycle() {
        let disk = SimDisk::instant();
        let spec = CsvSpec::new(1_000, 3, 7);
        stage_csv(&disk, "t.csv", &spec);
        let session = Session::open(disk);
        session
            .register_table(
                "t",
                "t.csv",
                Schema::uniform_ints(3),
                TextDialect::CSV,
                ScanRawConfig::default().with_chunk_rows(200),
            )
            .unwrap();
        let q = Query::sum_of_columns("t", 0..3);
        let explain = session.explain(&q).unwrap();
        assert_eq!(explain.projection, vec![0, 1, 2]);
        let outcome = session.execute(&q).unwrap();
        assert_eq!(outcome.result.rows_scanned, 1_000);
        assert!(matches!(outcome.result.scalar(), Some(Value::Int(_))));
    }

    #[test]
    fn session_exec_mode_toggle() {
        let session = Session::open(SimDisk::instant()).with_exec_mode(ExecMode::Serial);
        assert_eq!(session.exec_mode(), ExecMode::Serial);
    }
}
