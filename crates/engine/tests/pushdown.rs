//! Push-down selection tests (paper §2, PARSE): predicate evaluated during
//! parsing, remaining columns converted only for qualifying rows; filtered
//! chunks are never cached or loaded.

use scanraw_engine::{AggExpr, Engine, Expr, Predicate, Query};
use scanraw_rawfile::generate::{csv_bytes, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, Value, WritePolicy};

fn engine(policy: WritePolicy) -> (Engine, CsvSpec) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(2000, 4, 21);
    stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(250)
                .with_workers(2)
                .with_policy(policy),
        )
        .unwrap();
    (engine, spec)
}

fn selective_query() -> Query {
    Query {
        table: "t".into(),
        filter: Some(Predicate::Cmp(
            Expr::col(0),
            scanraw_engine::predicate::CmpOp::Lt,
            Expr::lit(1i64 << 28), // ~12% of uniform u32 < 2^31
        )),
        group_by: vec![],
        aggregates: vec![AggExpr::sum(Expr::col(2)), AggExpr::count()],
        pushdown: false,
        projection: None,
    }
}

fn reference_answer(spec: &CsvSpec) -> (i64, i64) {
    let text = String::from_utf8(csv_bytes(spec)).unwrap();
    let mut sum = 0i64;
    let mut count = 0i64;
    for line in text.lines() {
        let v: Vec<i64> = line.split(',').map(|f| f.parse().unwrap()).collect();
        if v[0] < 1 << 28 {
            sum += v[2];
            count += 1;
        }
    }
    (sum, count)
}

#[test]
fn pushdown_matches_row_filter_answer() {
    let (eng, spec) = engine(WritePolicy::ExternalTables);
    let (sum, count) = reference_answer(&spec);

    let plain = eng.execute(&selective_query()).unwrap();
    let pushed = eng.execute(&selective_query().with_pushdown()).unwrap();
    assert_eq!(plain.result.rows[0].aggregates[0], Value::Int(sum));
    assert_eq!(pushed.result.rows, plain.result.rows);
    assert_eq!(pushed.result.rows_scanned, count as u64);
}

#[test]
fn pushdown_chunks_are_not_cached() {
    let (eng, _) = engine(WritePolicy::ExternalTables);
    eng.execute(&selective_query().with_pushdown()).unwrap();
    let op = eng.operator("t").unwrap();
    assert!(
        op.cache().is_empty(),
        "filtered chunks must not enter the cache"
    );
    // A plain query afterwards converts from raw again and caches normally.
    let out = eng.execute(&selective_query()).unwrap();
    assert_eq!(out.scan.from_raw, 8);
    assert_eq!(op.cache().len(), 8);
}

#[test]
fn pushdown_never_loads_even_under_speculative() {
    let (eng, _) = engine(WritePolicy::speculative());
    eng.execute(&selective_query().with_pushdown()).unwrap();
    let op = eng.operator("t").unwrap();
    op.drain_writes();
    assert_eq!(
        op.chunks_written(),
        0,
        "filtered chunks must never reach the database"
    );
}

#[test]
fn pushdown_with_like_predicate_on_strings() {
    use scanraw_rawfile::sam::{field, sam_schema, stage_sam, SamSpec};
    let disk = SimDisk::instant();
    let (reads, _) = stage_sam(
        &disk,
        "r.sam",
        &SamSpec {
            reads: 800,
            read_len: 30,
            ref_len: 10_000,
            seed: 3,
        },
    );
    let eng = Engine::new(Database::new(disk));
    eng.register_table(
        "r",
        "r.sam",
        sam_schema(),
        TextDialect::TSV,
        ScanRawConfig::default()
            .with_chunk_rows(128)
            .with_workers(2),
    )
    .unwrap();
    let q = Query {
        table: "r".into(),
        filter: Some(Predicate::like(field::CIGAR, "%I%")),
        group_by: vec![],
        aggregates: vec![AggExpr::count()],
        pushdown: true,
        projection: None,
    };
    let out = eng.execute(&q).unwrap();
    let expected = reads.iter().filter(|r| r.cigar.contains('I')).count();
    assert_eq!(out.result.scalar(), Some(&Value::Int(expected as i64)));
}

#[test]
fn pushdown_statistics_are_not_recorded_from_filtered_chunks() {
    // Filtered chunks would produce too-narrow min/max bounds; verify the
    // catalog has no bounds after a pushdown-only scan.
    let (eng, _) = engine(WritePolicy::ExternalTables);
    eng.execute(&selective_query().with_pushdown()).unwrap();
    let op = eng.operator("t").unwrap();
    let entry = op.database().catalog().table("t").unwrap();
    let entry = entry.read();
    for i in 0..entry.n_chunks() {
        if let Some(s) = entry.stats(scanraw_types::ChunkId(i as u32)) {
            assert!(
                s.bounds.iter().all(|b| b.is_none()),
                "chunk {i} has bounds from filtered data"
            );
        }
    }
}
