//! Engine-level integration tests: full queries over ScanRaw.

use scanraw_engine::{AggExpr, Col, Engine, Expr, Predicate, Query};
use scanraw_rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::sam::{field, sam_schema, stage_sam, SamSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, Value, WritePolicy};
use std::collections::HashMap;

fn engine_with_csv(policy: WritePolicy) -> (Engine, CsvSpec) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(3000, 4, 11);
    stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(250)
                .with_workers(2)
                .with_policy(policy),
        )
        .unwrap();
    (engine, spec)
}

#[test]
fn paper_microbenchmark_query() {
    // SELECT SUM(c0+c1+c2+c3) FROM t — the §5.1 query.
    let (engine, spec) = engine_with_csv(WritePolicy::speculative());
    let q = Query::sum_of_columns("t", 0..4);
    let out = engine.execute(&q).unwrap();
    let expected: i64 = expected_column_sums(&spec).iter().sum();
    assert_eq!(out.result.scalar(), Some(&Value::Int(expected)));
    assert_eq!(out.result.rows_scanned, 3000);
}

#[test]
fn all_policies_agree_on_results() {
    let q = Query::sum_of_columns("t", 0..4);
    let mut answers = Vec::new();
    for policy in [
        WritePolicy::ExternalTables,
        WritePolicy::Eager,
        WritePolicy::Buffered,
        WritePolicy::Invisible {
            chunks_per_query: 2,
        },
        WritePolicy::speculative(),
        WritePolicy::Speculative { safeguard: false },
    ] {
        let (engine, _) = engine_with_csv(policy);
        // Two queries each: results must be identical before and after any
        // loading happened.
        let a1 = engine.execute(&q).unwrap().result;
        let a2 = engine.execute(&q).unwrap().result;
        assert_eq!(a1.rows, a2.rows, "{policy:?} changed answers after loading");
        answers.push(a1.rows);
    }
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1], "policies disagree");
    }
}

#[test]
fn filtered_aggregate() {
    let (engine, spec) = engine_with_csv(WritePolicy::ExternalTables);
    // Recompute the expected filtered sum from the generator.
    let text = String::from_utf8(scanraw_rawfile::generate::csv_bytes(&spec)).unwrap();
    let mut expected = 0i64;
    let mut count = 0i64;
    for line in text.lines() {
        let v: Vec<i64> = line.split(',').map(|f| f.parse().unwrap()).collect();
        if v[0] < 1 << 30 {
            expected += v[1];
            count += 1;
        }
    }
    let q = Query {
        table: "t".into(),
        filter: Some(Predicate::Cmp(
            Expr::col(0),
            scanraw_engine::predicate::CmpOp::Lt,
            Expr::lit(1i64 << 30),
        )),
        group_by: vec![],
        aggregates: vec![AggExpr::sum(Expr::col(1)), AggExpr::count()],
        pushdown: false,
        projection: None,
    };
    let out = engine.execute(&q).unwrap();
    assert_eq!(out.result.rows[0].aggregates[0], Value::Int(expected));
    assert_eq!(out.result.rows[0].aggregates[1], Value::Int(count));
}

#[test]
fn group_by_aggregate() {
    let disk = SimDisk::instant();
    // Two columns: group key (0..3) and a value.
    let mut text = String::new();
    let mut expected: HashMap<i64, (i64, i64)> = HashMap::new();
    for i in 0..300i64 {
        let k = i % 3;
        let v = i * 10;
        text.push_str(&format!("{k},{v}\n"));
        let e = expected.entry(k).or_default();
        e.0 += v;
        e.1 += 1;
    }
    disk.storage().put("g.csv", text.into_bytes());
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "g",
            "g.csv",
            Schema::uniform_ints(2),
            TextDialect::CSV,
            ScanRawConfig::default().with_chunk_rows(64).with_workers(2),
        )
        .unwrap();
    let q = Query {
        table: "g".into(),
        filter: None,
        group_by: vec![Col(0)],
        aggregates: vec![AggExpr::sum(Expr::col(1)), AggExpr::count()],
        pushdown: false,
        projection: None,
    };
    let out = engine.execute(&q).unwrap();
    assert_eq!(out.result.rows.len(), 3);
    for row in &out.result.rows {
        let k = row.keys[0].as_i64().unwrap();
        let (sum, count) = expected[&k];
        assert_eq!(row.aggregates[0], Value::Int(sum));
        assert_eq!(row.aggregates[1], Value::Int(count));
    }
}

#[test]
fn query_sequence_converges_to_database_speed_sources() {
    let (engine, _) = engine_with_csv(WritePolicy::speculative());
    let q = Query::sum_of_columns("t", 0..4);
    let first = engine.execute(&q).unwrap();
    assert!(first.scan.from_raw > 0);
    // Default cache holds all 12 chunks, so by query 2 everything is cached.
    let second = engine.execute(&q).unwrap();
    assert_eq!(second.scan.from_raw, 0);
    assert_eq!(
        second.scan.from_cache + second.scan.from_db,
        second.scan.chunks_delivered
    );
}

#[test]
fn cigar_distribution_query_on_sam() {
    // The §5.2 genomic workload: distribution of CIGAR values among reads
    // matching a pattern at positions in a range.
    let disk = SimDisk::instant();
    let spec = SamSpec {
        reads: 2000,
        read_len: 50,
        ref_len: 100_000,
        seed: 5,
    };
    let (reads, _) = stage_sam(&disk, "na.sam", &spec);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "reads",
            "na.sam",
            sam_schema(),
            TextDialect::TSV,
            ScanRawConfig::default()
                .with_chunk_rows(256)
                .with_workers(2),
        )
        .unwrap();

    let q = Query {
        table: "reads".into(),
        filter: Some(Predicate::And(
            Box::new(Predicate::like(field::CIGAR, "%I%")),
            Box::new(Predicate::between(field::POS, 1i64, 50_000i64)),
        )),
        group_by: vec![Col(field::CIGAR)],
        aggregates: vec![AggExpr::count()],
        pushdown: false,
        projection: None,
    };
    let out = engine.execute(&q).unwrap();

    // Reference computation straight from the generated reads.
    let mut expected: HashMap<&str, i64> = HashMap::new();
    for r in &reads {
        if r.cigar.contains('I') && (1..=50_000).contains(&r.pos) {
            *expected.entry(r.cigar.as_str()).or_default() += 1;
        }
    }
    assert_eq!(out.result.rows.len(), expected.len());
    for row in &out.result.rows {
        let cigar = row.keys[0].as_str().unwrap();
        assert_eq!(
            row.aggregates[0],
            Value::Int(expected[cigar]),
            "cigar {cigar}"
        );
    }
}

#[test]
fn sam_and_bam_paths_agree() {
    use scanraw_engine::bamscan::execute_over_bam;
    use scanraw_rawfile::bamsim::stage_bam;
    let disk = SimDisk::instant();
    let spec = SamSpec {
        reads: 1500,
        read_len: 40,
        ref_len: 50_000,
        seed: 9,
    };
    let (reads, _) = stage_sam(&disk, "x.sam", &spec);
    stage_bam(&disk, "x.bam", &reads);

    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "reads",
            "x.sam",
            sam_schema(),
            TextDialect::TSV,
            ScanRawConfig::default()
                .with_chunk_rows(200)
                .with_workers(2),
        )
        .unwrap();
    let q = Query {
        table: "reads".into(),
        filter: Some(Predicate::like(field::CIGAR, "%D%")),
        group_by: vec![Col(field::CIGAR)],
        aggregates: vec![AggExpr::count()],
        pushdown: false,
        projection: None,
    };
    let via_sam = engine.execute(&q).unwrap().result;
    let via_bam = execute_over_bam(&disk, "x.bam", &q).unwrap();
    assert_eq!(via_sam.rows, via_bam.rows);
    assert_eq!(via_sam.rows_scanned, via_bam.rows_scanned);
}

#[test]
fn unknown_table_and_empty_aggregates_rejected() {
    let (engine, _) = engine_with_csv(WritePolicy::ExternalTables);
    assert!(engine.execute(&Query::sum_of_columns("nope", [0])).is_err());
    let q = Query {
        table: "t".into(),
        filter: None,
        group_by: vec![],
        aggregates: vec![],
        pushdown: false,
        projection: None,
    };
    assert!(engine.execute(&q).is_err());
    // Duplicate registration is also rejected.
    assert!(engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default(),
        )
        .is_err());
}

#[test]
fn chunk_skipping_reduces_io_on_repeat_query() {
    let disk = SimDisk::instant();
    let mut text = String::new();
    for chunk in 0..8 {
        for r in 0..100 {
            text.push_str(&format!("{},{}\n", chunk * 1000 + r, r));
        }
    }
    disk.storage().put("ord.csv", text.into_bytes());
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "ord",
            "ord.csv",
            Schema::uniform_ints(2),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(100)
                .with_workers(2),
        )
        .unwrap();
    // Query 1 gathers statistics.
    engine
        .execute(&Query::sum_of_columns("ord", [0, 1]))
        .unwrap();
    // Query 2 with a narrow range must skip chunks.
    let q =
        Query::sum_of_columns("ord", [0, 1]).with_filter(Predicate::between(0, 3000i64, 3099i64));
    let out = engine.execute(&q).unwrap();
    assert_eq!(out.scan.skipped, 7, "{:?}", out.scan);
    assert_eq!(out.result.rows_scanned, 100);
}
