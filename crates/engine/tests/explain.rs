//! Tests of the statistics-driven EXPLAIN path (paper §3.3: cardinality
//! estimation from conversion-time statistics).

use scanraw_engine::{Engine, Predicate, Query};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};

/// 8 chunks of 100 rows; column 0 is `chunk*1000 + row` (clustered),
/// column 1 cycles 0..10.
fn clustered_engine(advanced: bool) -> Engine {
    let disk = SimDisk::instant();
    let mut text = String::new();
    for chunk in 0..8 {
        for r in 0..100 {
            text.push_str(&format!("{},{}\n", chunk * 1000 + r, r % 10));
        }
    }
    disk.storage().put("c.csv", text.into_bytes());
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "c",
            "c.csv",
            Schema::uniform_ints(2),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(100)
                .with_workers(2)
                .with_policy(WritePolicy::ExternalTables)
                .with_advanced_statistics(advanced),
        )
        .unwrap();
    engine
}

#[test]
fn explain_before_first_scan_knows_nothing() {
    let engine = clustered_engine(true);
    let q = Query::sum_of_columns("c", [0, 1]);
    let rep = engine.explain(&q).unwrap();
    assert_eq!(rep.estimated_rows, None, "no layout yet");
    assert_eq!(
        rep.expect_from_raw + rep.expect_from_db + rep.expect_from_cache,
        0
    );
    assert!(!rep.uses_chunk_skipping);
    assert_eq!(rep.projection, vec![0, 1]);
}

#[test]
fn explain_after_scan_estimates_cardinality() {
    let engine = clustered_engine(true);
    let q = Query::sum_of_columns("c", [0, 1]);
    engine.execute(&q).unwrap(); // collects statistics

    // Range covering exactly one chunk: bounds prune 7 of 8 chunks.
    let narrow = q
        .clone()
        .with_filter(Predicate::between(0, 3000i64, 3099i64));
    let rep = engine.explain(&narrow).unwrap();
    assert!(rep.uses_chunk_skipping);
    assert_eq!(
        rep.expect_from_cache + rep.expect_from_db + rep.expect_from_raw,
        8
    );
    // 100 of 800 rows match → selectivity ≈ 1/8 (sample-based within the
    // surviving chunk; bounds zero out the rest).
    assert!(
        rep.estimated_selectivity <= 0.2,
        "selectivity {}",
        rep.estimated_selectivity
    );
    assert!(rep.estimated_selectivity > 0.0);
    let est = rep.estimated_rows.unwrap();
    assert!(est <= 160, "estimated {est}");

    // Verify against the true answer.
    let out = engine.execute(&narrow).unwrap();
    assert_eq!(out.result.rows_scanned, 100);
}

#[test]
fn explain_without_advanced_stats_falls_back_to_bounds() {
    let engine = clustered_engine(false);
    let q = Query::sum_of_columns("c", [0, 1]);
    engine.execute(&q).unwrap();
    let narrow = q
        .clone()
        .with_filter(Predicate::between(0, 3000i64, 3099i64));
    let rep = engine.explain(&narrow).unwrap();
    // Bounds prune 7/8 chunks; the surviving chunk counts fully (no sample).
    assert!((rep.estimated_selectivity - 0.125).abs() < 1e-9);
}

#[test]
fn explain_tracks_chunk_sources_as_loading_progresses() {
    let disk = SimDisk::instant();
    let mut text = String::new();
    for i in 0..400 {
        text.push_str(&format!("{i},{i}\n"));
    }
    disk.storage().put("p.csv", text.into_bytes());
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "p",
            "p.csv",
            Schema::uniform_ints(2),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(100)
                .with_cache_chunks(1)
                .with_workers(2)
                .with_policy(WritePolicy::Eager),
        )
        .unwrap();
    let q = Query::sum_of_columns("p", [0, 1]);
    engine.execute(&q).unwrap();
    engine.operator("p").unwrap().drain_writes();
    let rep = engine.explain(&q).unwrap();
    assert_eq!(rep.expect_from_raw, 0, "{rep:?}");
    assert_eq!(rep.expect_from_cache + rep.expect_from_db, 4);
    assert_eq!(rep.estimated_rows, Some(400));
}

#[test]
fn distinct_estimates_from_advanced_stats() {
    let engine = clustered_engine(true);
    engine.execute(&Query::sum_of_columns("c", [0, 1])).unwrap();
    let op = engine.operator("c").unwrap();
    let entry = op.database().catalog().table("c").unwrap();
    let entry = entry.read();
    // Column 1 holds 10 distinct values per chunk → upper bound 80 across 8
    // chunks, at least 10.
    let d = entry.estimate_distinct(1).unwrap();
    assert!((10..=80).contains(&d), "distinct estimate {d}");
    // Column 0 is unique per row: 100 distinct per chunk (exact, < budget).
    let d0 = entry.estimate_distinct(0).unwrap();
    assert_eq!(d0, 800);
}
