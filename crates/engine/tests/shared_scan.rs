//! Multi-query shared-scan tests (the paper's §7 future work): several
//! queries over the same raw file answered from a single scan.

use scanraw_engine::{AggExpr, Engine, Expr, Predicate, Query};
use scanraw_rawfile::generate::{csv_bytes, expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::{AccessKind, SimDisk};
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, Value, WritePolicy};

fn engine() -> (Engine, CsvSpec, SimDisk) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(2000, 4, 31);
    stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(250)
                .with_workers(2)
                .with_policy(WritePolicy::ExternalTables),
        )
        .unwrap();
    (engine, spec, disk)
}

#[test]
fn shared_scan_matches_individual_execution() {
    let (eng, _, _) = engine();
    let queries = vec![
        Query::sum_of_columns("t", [0]),
        Query::sum_of_columns("t", [1, 2]),
        Query {
            table: "t".into(),
            filter: Some(Predicate::Cmp(
                Expr::col(3),
                scanraw_engine::predicate::CmpOp::Lt,
                Expr::lit(1i64 << 30),
            )),
            group_by: vec![],
            aggregates: vec![AggExpr::count()],
            pushdown: false,
            projection: None,
        },
    ];
    let shared = eng.execute_shared(&queries).unwrap();
    for (q, sh) in queries.iter().zip(&shared) {
        let single = eng.execute(q).unwrap();
        assert_eq!(single.result.rows, sh.result.rows, "query {q:?}");
        assert_eq!(single.result.rows_scanned, sh.result.rows_scanned);
    }
}

#[test]
fn shared_scan_reads_the_file_once() {
    let (eng, spec, disk) = engine();
    let before = disk.stats().bytes(AccessKind::Read);
    let queries = vec![
        Query::sum_of_columns("t", [0, 1]),
        Query::sum_of_columns("t", [2, 3]),
        Query::sum_of_columns("t", [0, 3]),
    ];
    let outcomes = eng.execute_shared(&queries).unwrap();
    let read = disk.stats().bytes(AccessKind::Read) - before;
    let file_len = csv_bytes(&spec).len() as u64;
    assert!(
        read <= file_len + 64 * 1024,
        "three queries should cost ~one file read: {read} vs {file_len}"
    );
    // All three saw the same shared scan.
    assert_eq!(outcomes[0].scan, outcomes[1].scan);
    let expected = expected_column_sums(&spec);
    assert_eq!(
        outcomes[0].result.scalar(),
        Some(&Value::Int(expected[0] + expected[1]))
    );
    assert_eq!(
        outcomes[2].result.scalar(),
        Some(&Value::Int(expected[0] + expected[3]))
    );
}

#[test]
fn shared_scan_common_range_still_skips_chunks() {
    // Clustered file so statistics separate chunks.
    let disk = SimDisk::instant();
    let mut text = String::new();
    for c in 0..8 {
        for r in 0..100 {
            text.push_str(&format!("{},{}\n", c * 1000 + r, r));
        }
    }
    disk.storage().put("o.csv", text.into_bytes());
    let eng = Engine::new(Database::new(disk));
    eng.register_table(
        "o",
        "o.csv",
        Schema::uniform_ints(2),
        TextDialect::CSV,
        ScanRawConfig::default()
            .with_chunk_rows(100)
            .with_workers(2),
    )
    .unwrap();
    eng.execute(&Query::sum_of_columns("o", [0, 1])).unwrap(); // stats

    let filter = Predicate::between(0, 2000i64, 2099i64);
    let queries = vec![
        Query::sum_of_columns("o", [1]).with_filter(filter.clone()),
        Query {
            table: "o".into(),
            filter: Some(filter),
            group_by: vec![],
            aggregates: vec![AggExpr::count()],
            pushdown: false,
            projection: None,
        },
    ];
    let outcomes = eng.execute_shared(&queries).unwrap();
    assert_eq!(outcomes[0].scan.skipped, 7, "{:?}", outcomes[0].scan);
    assert_eq!(outcomes[1].result.scalar(), Some(&Value::Int(100)));
}

#[test]
fn shared_scan_divergent_ranges_disable_skipping() {
    let (eng, _, _) = engine();
    let queries = vec![
        Query::sum_of_columns("t", [0]).with_filter(Predicate::between(0, 0i64, 10i64)),
        Query::sum_of_columns("t", [0]).with_filter(Predicate::between(0, 20i64, 30i64)),
    ];
    // Must run correctly (delivering every chunk) even though the ranges
    // disagree.
    let outcomes = eng.execute_shared(&queries).unwrap();
    assert_eq!(outcomes[0].scan.skipped, 0);
}

#[test]
fn shared_scan_input_validation() {
    let (eng, _, _) = engine();
    assert!(eng.execute_shared(&[]).is_err());
    let other_table = vec![
        Query::sum_of_columns("t", [0]),
        Query::sum_of_columns("elsewhere", [0]),
    ];
    assert!(eng.execute_shared(&other_table).is_err());
    let pushed = vec![Query::sum_of_columns("t", [0])
        .with_filter(Predicate::between(0, 0i64, 1i64))
        .with_pushdown()];
    assert!(eng.execute_shared(&pushed).is_err());
}
