//! Retry-with-backoff for simulated device operations.
//!
//! Transient device faults (and read-side corruption, which a re-read can
//! clear — the stored bytes are intact, only the transfer was damaged) are
//! retried under a per-scan budget with linear backoff charged to the device
//! clock. Permanent errors are never retried; the caller decides how to
//! degrade — READ falls back to raw-file conversion, WRITE switches the
//! operator into external-table mode.

use scanraw_obs::{Obs, ObsEvent};
use scanraw_simio::SharedClock;
use scanraw_types::Result;
use std::time::Duration;

/// Metrics counter bumped once per retried attempt.
pub(crate) const RETRY_COUNTER: &str = "scanraw.io.retries";

/// Counter bumped when a database read fell back to raw-file conversion.
pub(crate) const DB_FALLBACK_COUNTER: &str = "scanraw.db.fallbacks";

/// Counter bumped when WRITE degraded the operator to external-table mode.
pub(crate) const DEGRADED_COUNTER: &str = "scanraw.load.degraded";

/// How a pipeline stage retries device operations.
#[derive(Debug, Clone)]
pub(crate) struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub budget: u32,
    /// Attempt `n` (1-based) sleeps `n * backoff` before re-issuing.
    pub backoff: Duration,
}

/// Runs `op`, retrying retryable errors (`Error::is_retryable`) up to
/// `policy.budget` extra attempts, sleeping linearly growing backoff on the
/// device clock between attempts. Every retry lands in the journal as an
/// [`ObsEvent::IoRetry`] and bumps the `scanraw.io.retries` counter.
///
/// # Errors
///
/// Returns the last error once the budget is exhausted, or immediately for
/// non-retryable (permanent) errors.
pub(crate) fn with_retry<T>(
    policy: &RetryPolicy,
    clock: &SharedClock,
    obs: &Obs,
    target: &str,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < policy.budget => {
                attempt += 1;
                obs.metrics.counter(RETRY_COUNTER).inc();
                obs.event(ObsEvent::IoRetry {
                    target: target.to_string(),
                    attempt: u64::from(attempt),
                });
                // The retry span covers just the backoff wait; it nests under
                // whatever span is current on this thread (write.chunk,
                // read.chunk, ...).
                let _span = obs.trace.enter_current(
                    "retry",
                    vec![
                        ("target", target.to_string()),
                        ("attempt", attempt.to_string()),
                    ],
                );
                clock.sleep(policy.backoff * attempt);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_simio::VirtualClock;
    use scanraw_types::Error;
    use std::sync::Arc;

    fn setup() -> (RetryPolicy, SharedClock, Obs) {
        let policy = RetryPolicy {
            budget: 3,
            backoff: Duration::from_micros(100),
        };
        let clock: SharedClock = Arc::new(VirtualClock::new());
        (policy, clock, Obs::new())
    }

    #[test]
    fn transient_errors_retry_until_budget() {
        let (policy, clock, obs) = setup();
        let mut calls = 0;
        let r = with_retry(&policy, &clock, &obs, "f", || {
            calls += 1;
            if calls < 3 {
                Err(Error::io_transient("f", "glitch"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3);
        assert_eq!(obs.metrics.counter_value(RETRY_COUNTER), Some(2));
        // Linear backoff: 1*100us + 2*100us of virtual time.
        assert_eq!(clock.now(), Duration::from_micros(300));
    }

    #[test]
    fn budget_exhaustion_surfaces_last_error() {
        let (policy, clock, obs) = setup();
        let mut calls = 0u32;
        let r: Result<()> = with_retry(&policy, &clock, &obs, "f", || {
            calls += 1;
            Err(Error::io_transient("f", "glitch"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 4, "initial try plus budget retries");
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let (policy, clock, obs) = setup();
        let mut calls = 0u32;
        let r: Result<()> = with_retry(&policy, &clock, &obs, "f", || {
            calls += 1;
            Err(Error::io_permanent("f", "dead"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
        assert_eq!(clock.now(), Duration::ZERO, "no backoff charged");
        assert_eq!(obs.metrics.counter_value(RETRY_COUNTER), None);
    }

    #[test]
    fn corrupt_reads_are_retryable() {
        let (policy, clock, obs) = setup();
        let mut calls = 0;
        let r = with_retry(&policy, &clock, &obs, "f", || {
            calls += 1;
            if calls == 1 {
                Err(Error::io_corrupt("f", "checksum mismatch"))
            } else {
                Ok(())
            }
        });
        assert!(r.is_ok());
        assert_eq!(calls, 2);
    }
}
