//! The binary chunks cache (paper §3.1, "Caching").
//!
//! All converted chunks land here before being delivered to the execution
//! engine or written to the database, and they stay cached across queries —
//! the cache belongs to the operator, which is attached to the raw file, not
//! to a query. Eviction is LRU *biased toward chunks already loaded inside
//! the database*: a chunk that also exists in binary form on disk is cheaper
//! to lose than one that would need re-tokenizing and re-parsing.

use parking_lot::Mutex;
use scanraw_obs::{Counter, Obs, ObsEvent};
use scanraw_types::{BinaryChunk, ChunkId};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifetime cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Metric handles + journal used when observability is attached.
struct CacheObs {
    obs: Obs,
    hit: Counter,
    miss: Counter,
    evict: Counter,
}

/// One cached entry.
struct Entry {
    chunk: Arc<BinaryChunk>,
    /// The chunk (all its cached columns) is stored in the database.
    loaded: bool,
    /// Monotonic recency stamp (larger = more recently used).
    stamp: u64,
    /// Monotonic insertion sequence (smaller = older; drives the speculative
    /// "oldest unloaded chunk" pick, §4).
    seq: u64,
}

struct Inner {
    map: HashMap<ChunkId, Entry>,
    capacity: usize,
    next_stamp: u64,
    next_seq: u64,
    /// Lifetime counters for observability and tests.
    counters: CacheCounters,
    /// Attached observability (metrics + journal); absent by default.
    obs: Option<CacheObs>,
}

/// Thread-safe chunk cache with load-biased LRU eviction. Cheap to clone.
#[derive(Clone)]
pub struct ChunkCache {
    inner: Arc<Mutex<Inner>>,
}

/// Outcome of an insert: the evicted victim, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Evicted {
    pub id: ChunkId,
    pub chunk: Arc<BinaryChunk>,
    /// Whether the victim was already loaded in the database.
    pub loaded: bool,
}

impl ChunkCache {
    /// Creates a cache holding at most `capacity` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity cache could never
    /// admit the chunk being inserted and would evict on every call.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ChunkCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                capacity,
                next_stamp: 0,
                next_seq: 0,
                counters: CacheCounters::default(),
                obs: None,
            })),
        }
    }

    /// Attaches an observability bundle: hits/misses/evictions feed the
    /// `cache.chunk.*` metrics and the event journal from now on.
    pub fn attach_obs(&self, obs: &Obs) {
        let cache_obs = CacheObs {
            obs: obs.clone(),
            hit: obs.metrics.counter("cache.chunk.hit"),
            miss: obs.metrics.counter("cache.chunk.miss"),
            evict: obs.metrics.counter("cache.chunk.evict"),
        };
        self.inner.lock().obs = Some(cache_obs);
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts (or replaces) a chunk; returns the victim evicted to make
    /// room, if the cache was full.
    ///
    /// Victim selection: least-recently-used among `loaded` entries first;
    /// only if every entry is unloaded, the globally least-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if the internal victim bookkeeping desynchronizes from the
    /// map — an invariant violation, not an input condition.
    pub fn insert(&self, chunk: Arc<BinaryChunk>, loaded: bool) -> Option<Evicted> {
        let mut g = self.inner.lock();
        let stamp = g.bump_stamp();
        let seq = g.bump_seq();
        if let Some(e) = g.map.get_mut(&chunk.id) {
            e.chunk = chunk;
            e.loaded = loaded;
            e.stamp = stamp;
            return None;
        }
        let mut evicted = None;
        if g.map.len() >= g.capacity {
            if let Some(victim) = g.pick_victim() {
                // lint-ok: L013 pick_victim returned a key of this same map
                let e = g.map.remove(&victim).expect("victim exists");
                g.counters.evictions += 1;
                if let Some(o) = &g.obs {
                    o.evict.inc();
                    o.obs.event(ObsEvent::CacheEvict {
                        chunk: victim.0 as u64,
                        loaded: e.loaded,
                    });
                }
                evicted = Some(Evicted {
                    id: victim,
                    chunk: e.chunk,
                    loaded: e.loaded,
                });
            }
        }
        g.map.insert(
            chunk.id,
            Entry {
                chunk,
                loaded,
                stamp,
                seq,
            },
        );
        evicted
    }

    /// Looks up a chunk, refreshing its recency on hit.
    pub fn get(&self, id: ChunkId) -> Option<Arc<BinaryChunk>> {
        let mut g = self.inner.lock();
        let stamp = g.bump_stamp();
        match g.map.get_mut(&id) {
            Some(e) => {
                e.stamp = stamp;
                g.counters.hits += 1;
                if let Some(o) = &g.obs {
                    o.hit.inc();
                    o.obs.event(ObsEvent::CacheHit { chunk: id.0 as u64 });
                }
                Some(g.map[&id].chunk.clone())
            }
            None => {
                g.counters.misses += 1;
                if let Some(o) = &g.obs {
                    o.miss.inc();
                    o.obs.event(ObsEvent::CacheMiss { chunk: id.0 as u64 });
                }
                None
            }
        }
    }

    /// Looks up without refreshing recency or counters (introspection).
    pub fn peek(&self, id: ChunkId) -> Option<Arc<BinaryChunk>> {
        self.inner.lock().map.get(&id).map(|e| e.chunk.clone())
    }

    /// True when the cached copy of `id` contains every column in `cols`.
    pub fn covers(&self, id: ChunkId, cols: &[usize]) -> bool {
        self.inner
            .lock()
            .map
            .get(&id)
            .is_some_and(|e| e.chunk.covers(cols))
    }

    /// Marks a cached chunk as loaded in the database (no-op if absent).
    pub fn mark_loaded(&self, id: ChunkId) {
        if let Some(e) = self.inner.lock().map.get_mut(&id) {
            e.loaded = true;
        }
    }

    /// The oldest (by insertion) cached chunk not yet loaded — the chunk
    /// speculative loading writes next (§4: "only the 'oldest' chunk in the
    /// binary cache that was not previously loaded into the database is
    /// written at a time").
    pub fn oldest_unloaded(&self) -> Option<Arc<BinaryChunk>> {
        let g = self.inner.lock();
        g.map
            .values()
            .filter(|e| !e.loaded)
            .min_by_key(|e| e.seq)
            .map(|e| e.chunk.clone())
    }

    /// All currently cached, not-yet-loaded chunks, oldest first — the
    /// safeguard flush set (§4).
    pub fn unloaded_chunks(&self) -> Vec<Arc<BinaryChunk>> {
        let g = self.inner.lock();
        let mut v: Vec<(&u64, Arc<BinaryChunk>)> = g
            .map
            .values()
            .filter(|e| !e.loaded)
            .map(|e| (&e.seq, e.chunk.clone()))
            .collect();
        v.sort_by_key(|(seq, _)| **seq);
        v.into_iter().map(|(_, c)| c).collect()
    }

    /// Ids of everything currently cached (unordered).
    pub fn cached_ids(&self) -> Vec<ChunkId> {
        self.inner.lock().map.keys().copied().collect()
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().counters
    }

    /// Drops every entry (used by tests and operator teardown).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

impl Inner {
    fn bump_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn pick_victim(&self) -> Option<ChunkId> {
        // LRU among loaded chunks first …
        if let Some((id, _)) = self
            .map
            .iter()
            .filter(|(_, e)| e.loaded)
            .min_by_key(|(_, e)| e.stamp)
        {
            return Some(*id);
        }
        // … otherwise plain LRU.
        self.map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(id: u32) -> Arc<BinaryChunk> {
        Arc::new(BinaryChunk::empty(ChunkId(id), id as u64 * 10, 10, 1))
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = ChunkCache::new(4);
        c.insert(chunk(1), false);
        assert!(c.get(ChunkId(1)).is_some());
        assert!(c.get(ChunkId(2)).is_none());
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn plain_lru_when_nothing_loaded() {
        let c = ChunkCache::new(2);
        c.insert(chunk(1), false);
        c.insert(chunk(2), false);
        c.get(ChunkId(1)); // refresh 1 → victim must be 2
        let ev = c.insert(chunk(3), false).expect("eviction");
        assert_eq!(ev.id, ChunkId(2));
        assert!(!ev.loaded);
    }

    #[test]
    fn bias_evicts_loaded_first() {
        let c = ChunkCache::new(2);
        c.insert(chunk(1), true); // loaded
        c.insert(chunk(2), false); // unloaded
        c.get(ChunkId(1)); // 1 is *more* recent, but loaded
        let ev = c.insert(chunk(3), false).expect("eviction");
        assert_eq!(ev.id, ChunkId(1), "loaded chunk evicted despite recency");
        assert!(ev.loaded);
        assert!(c.peek(ChunkId(2)).is_some());
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let c = ChunkCache::new(1);
        c.insert(chunk(1), false);
        assert!(c.insert(chunk(1), true).is_none());
        // mark via reinsert took effect:
        assert!(c.oldest_unloaded().is_none());
    }

    #[test]
    fn oldest_unloaded_by_insertion_order() {
        let c = ChunkCache::new(4);
        c.insert(chunk(5), false);
        c.insert(chunk(3), false);
        c.insert(chunk(7), true);
        // Recency must not matter — touch 5.
        c.get(ChunkId(5));
        assert_eq!(c.oldest_unloaded().unwrap().id, ChunkId(5));
        c.mark_loaded(ChunkId(5));
        assert_eq!(c.oldest_unloaded().unwrap().id, ChunkId(3));
        c.mark_loaded(ChunkId(3));
        assert!(c.oldest_unloaded().is_none());
    }

    #[test]
    fn unloaded_chunks_ordered_oldest_first() {
        let c = ChunkCache::new(4);
        c.insert(chunk(2), false);
        c.insert(chunk(9), false);
        c.insert(chunk(4), true);
        let ids: Vec<u32> = c.unloaded_chunks().iter().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![2, 9]);
    }

    #[test]
    fn covers_checks_columns() {
        use scanraw_types::ColumnData;
        let c = ChunkCache::new(2);
        let mut b = BinaryChunk::empty(ChunkId(1), 0, 2, 2);
        b.columns[0] = Some(ColumnData::Int64(vec![1, 2]));
        c.insert(Arc::new(b), false);
        assert!(c.covers(ChunkId(1), &[0]));
        assert!(!c.covers(ChunkId(1), &[0, 1]));
        assert!(!c.covers(ChunkId(9), &[0]));
    }

    #[test]
    fn eviction_counter() {
        let c = ChunkCache::new(1);
        c.insert(chunk(1), false);
        c.insert(chunk(2), false);
        c.insert(chunk(3), false);
        assert_eq!(c.counters().evictions, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn attached_obs_sees_hits_misses_evictions() {
        let obs = Obs::with_journal_capacity(64);
        let c = ChunkCache::new(1);
        c.attach_obs(&obs);
        c.insert(chunk(1), false);
        c.get(ChunkId(1)); // hit
        c.get(ChunkId(9)); // miss
        c.insert(chunk(2), false); // evicts 1
        assert_eq!(obs.metrics.counter_value("cache.chunk.hit"), Some(1));
        assert_eq!(obs.metrics.counter_value("cache.chunk.miss"), Some(1));
        assert_eq!(obs.metrics.counter_value("cache.chunk.evict"), Some(1));
        assert_eq!(
            obs.journal
                .count_where(|e| matches!(e, ObsEvent::CacheEvict { chunk: 1, .. })),
            1
        );
        // Journal and struct counters agree.
        let counters = c.counters();
        assert_eq!(
            counters,
            CacheCounters {
                hits: 1,
                misses: 1,
                evictions: 1
            }
        );
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        ChunkCache::new(0);
    }
}
