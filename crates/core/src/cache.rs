//! The binary chunks cache (paper §3.1, "Caching").
//!
//! All converted chunks land here before being delivered to the execution
//! engine or written to the database, and they stay cached across queries —
//! the cache belongs to the operator, which is attached to the raw file, not
//! to a query. Eviction is LRU *biased toward chunks already loaded inside
//! the database*: a chunk that also exists in binary form on disk is cheaper
//! to lose than one that would need re-tokenizing and re-parsing.
//!
//! Loadedness is tracked per (chunk, column) cell: a cached chunk remembers
//! which of its present columns are durably stored, so the speculative
//! scheduler can pick individual cells and the eviction bias only applies
//! once *every* present cell is stored.

use parking_lot::Mutex;
use scanraw_obs::{Counter, Obs, ObsEvent};
use scanraw_types::{BinaryChunk, ChunkId};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifetime cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Metric handles + journal used when observability is attached.
struct CacheObs {
    obs: Obs,
    hit: Counter,
    miss: Counter,
    evict: Counter,
}

/// One cached entry.
struct Entry {
    chunk: Arc<BinaryChunk>,
    /// `loaded_cols[col]` — the (chunk, col) cell is stored in the database.
    /// Parallel to `chunk.columns`; absent columns carry a dead `false`.
    loaded_cols: Vec<bool>,
    /// Monotonic recency stamp (larger = more recently used).
    stamp: u64,
    /// Monotonic insertion sequence (smaller = older; drives the speculative
    /// "oldest unloaded cell" pick, §4).
    seq: u64,
}

impl Entry {
    /// Present columns whose cells are not yet stored in the database.
    fn missing_cols(&self) -> Vec<usize> {
        self.chunk
            .columns
            .iter()
            .enumerate()
            .filter(|(i, c)| c.is_some() && !self.loaded_cols.get(*i).copied().unwrap_or(false))
            .map(|(i, _)| i)
            .collect()
    }

    /// Every present column's cell is stored — the chunk is cheap to lose.
    fn is_loaded(&self) -> bool {
        self.chunk
            .columns
            .iter()
            .enumerate()
            .all(|(i, c)| c.is_none() || self.loaded_cols.get(i).copied().unwrap_or(false))
    }
}

fn loaded_bits(chunk: &BinaryChunk, loaded_cols: &[usize]) -> Vec<bool> {
    let mut bits = vec![false; chunk.columns.len()];
    for &c in loaded_cols {
        if let Some(b) = bits.get_mut(c) {
            *b = true;
        }
    }
    bits
}

struct Inner {
    map: HashMap<ChunkId, Entry>,
    capacity: usize,
    next_stamp: u64,
    next_seq: u64,
    /// Lifetime counters for observability and tests.
    counters: CacheCounters,
    /// Attached observability (metrics + journal); absent by default.
    obs: Option<CacheObs>,
}

/// Thread-safe chunk cache with load-biased LRU eviction. Cheap to clone.
#[derive(Clone)]
pub struct ChunkCache {
    inner: Arc<Mutex<Inner>>,
}

/// Outcome of an insert: the evicted victim, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Evicted {
    pub id: ChunkId,
    pub chunk: Arc<BinaryChunk>,
    /// Whether every present column cell of the victim was already stored in
    /// the database.
    pub loaded: bool,
    /// Present columns of the victim whose cells were *not* yet stored — the
    /// cells a buffered write-on-eviction must persist.
    pub missing_cols: Vec<usize>,
}

impl ChunkCache {
    /// Creates a cache holding at most `capacity` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity cache could never
    /// admit the chunk being inserted and would evict on every call.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ChunkCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                capacity,
                next_stamp: 0,
                next_seq: 0,
                counters: CacheCounters::default(),
                obs: None,
            })),
        }
    }

    /// Attaches an observability bundle: hits/misses/evictions feed the
    /// `cache.chunk.*` metrics and the event journal from now on.
    pub fn attach_obs(&self, obs: &Obs) {
        let cache_obs = CacheObs {
            obs: obs.clone(),
            hit: obs.metrics.counter("cache.chunk.hit"),
            miss: obs.metrics.counter("cache.chunk.miss"),
            evict: obs.metrics.counter("cache.chunk.evict"),
        };
        self.inner.lock().obs = Some(cache_obs);
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts (or replaces) a chunk; `loaded_cols` names the columns whose
    /// (chunk, col) cells are already stored in the database. Returns the
    /// victim evicted to make room, if the cache was full. Re-inserting an
    /// existing id unions the loaded bits — a cell the WRITE thread already
    /// committed can never be un-marked by a racing delivery.
    ///
    /// Victim selection: least-recently-used among fully-loaded entries
    /// first; only if every entry has missing cells, the globally
    /// least-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if the internal victim bookkeeping desynchronizes from the
    /// map — an invariant violation, not an input condition.
    pub fn insert(&self, chunk: Arc<BinaryChunk>, loaded_cols: &[usize]) -> Option<Evicted> {
        let mut g = self.inner.lock();
        let stamp = g.bump_stamp();
        let seq = g.bump_seq();
        if let Some(e) = g.map.get_mut(&chunk.id) {
            let mut bits = loaded_bits(&chunk, loaded_cols);
            for (i, old) in e.loaded_cols.iter().enumerate() {
                if *old {
                    if let Some(b) = bits.get_mut(i) {
                        *b = true;
                    }
                }
            }
            e.chunk = chunk;
            e.loaded_cols = bits;
            e.stamp = stamp;
            return None;
        }
        let mut evicted = None;
        if g.map.len() >= g.capacity {
            if let Some(victim) = g.pick_victim() {
                // lint-ok: L013 pick_victim returned a key of this same map
                let e = g.map.remove(&victim).expect("victim exists");
                g.counters.evictions += 1;
                let loaded = e.is_loaded();
                if let Some(o) = &g.obs {
                    o.evict.inc();
                    o.obs.event(ObsEvent::CacheEvict {
                        chunk: victim.0 as u64,
                        loaded,
                    });
                }
                evicted = Some(Evicted {
                    id: victim,
                    missing_cols: e.missing_cols(),
                    chunk: e.chunk,
                    loaded,
                });
            }
        }
        let loaded_cols = loaded_bits(&chunk, loaded_cols);
        g.map.insert(
            chunk.id,
            Entry {
                chunk,
                loaded_cols,
                stamp,
                seq,
            },
        );
        evicted
    }

    /// Looks up a chunk, refreshing its recency on hit.
    pub fn get(&self, id: ChunkId) -> Option<Arc<BinaryChunk>> {
        let mut g = self.inner.lock();
        let stamp = g.bump_stamp();
        match g.map.get_mut(&id) {
            Some(e) => {
                e.stamp = stamp;
                g.counters.hits += 1;
                if let Some(o) = &g.obs {
                    o.hit.inc();
                    o.obs.event(ObsEvent::CacheHit { chunk: id.0 as u64 });
                }
                Some(g.map[&id].chunk.clone())
            }
            None => {
                g.counters.misses += 1;
                if let Some(o) = &g.obs {
                    o.miss.inc();
                    o.obs.event(ObsEvent::CacheMiss { chunk: id.0 as u64 });
                }
                None
            }
        }
    }

    /// Looks up without refreshing recency or counters (introspection).
    pub fn peek(&self, id: ChunkId) -> Option<Arc<BinaryChunk>> {
        self.inner.lock().map.get(&id).map(|e| e.chunk.clone())
    }

    /// True when the cached copy of `id` contains every column in `cols`.
    pub fn covers(&self, id: ChunkId, cols: &[usize]) -> bool {
        self.inner
            .lock()
            .map
            .get(&id)
            .is_some_and(|e| e.chunk.covers(cols))
    }

    /// Marks (chunk, col) cells of a cached chunk as stored in the database
    /// (no-op if absent). Cell-granular: only the named columns flip.
    pub fn mark_loaded(&self, id: ChunkId, cols: &[usize]) {
        if let Some(e) = self.inner.lock().map.get_mut(&id) {
            for &c in cols {
                if let Some(b) = e.loaded_cols.get_mut(c) {
                    *b = true;
                }
            }
        }
    }

    /// All cached chunks with at least one unloaded present-column cell,
    /// oldest first, each paired with its missing columns — the candidate
    /// set both the speculative pick and the safeguard flush draw from (§4,
    /// at chunk×column granularity).
    pub fn unloaded_cells(&self) -> Vec<(Arc<BinaryChunk>, Vec<usize>)> {
        let g = self.inner.lock();
        let mut v: Vec<(u64, Arc<BinaryChunk>, Vec<usize>)> = g
            .map
            .values()
            .filter_map(|e| {
                let missing = e.missing_cols();
                (!missing.is_empty()).then(|| (e.seq, e.chunk.clone(), missing))
            })
            .collect();
        v.sort_by_key(|(seq, _, _)| *seq);
        v.into_iter().map(|(_, c, m)| (c, m)).collect()
    }

    /// Ids of everything currently cached (unordered).
    pub fn cached_ids(&self) -> Vec<ChunkId> {
        self.inner.lock().map.keys().copied().collect()
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().counters
    }

    /// Drops every entry (used by tests and operator teardown).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

impl Inner {
    fn bump_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn pick_victim(&self) -> Option<ChunkId> {
        // LRU among fully-loaded chunks first …
        if let Some((id, _)) = self
            .map
            .iter()
            .filter(|(_, e)| e.is_loaded())
            .min_by_key(|(_, e)| e.stamp)
        {
            return Some(*id);
        }
        // … otherwise plain LRU.
        self.map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(id: u32) -> Arc<BinaryChunk> {
        chunk_cols(id, 1)
    }

    /// A chunk with `n_cols` present Int64 columns.
    fn chunk_cols(id: u32, n_cols: usize) -> Arc<BinaryChunk> {
        use scanraw_types::ColumnData;
        let mut b = BinaryChunk::empty(ChunkId(id), id as u64 * 2, 2, n_cols);
        for col in b.columns.iter_mut() {
            *col = Some(ColumnData::Int64(vec![id as i64, 2]));
        }
        Arc::new(b)
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = ChunkCache::new(4);
        c.insert(chunk(1), &[]);
        assert!(c.get(ChunkId(1)).is_some());
        assert!(c.get(ChunkId(2)).is_none());
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn plain_lru_when_nothing_loaded() {
        let c = ChunkCache::new(2);
        c.insert(chunk(1), &[]);
        c.insert(chunk(2), &[]);
        c.get(ChunkId(1)); // refresh 1 → victim must be 2
        let ev = c.insert(chunk(3), &[]).expect("eviction");
        assert_eq!(ev.id, ChunkId(2));
        assert!(!ev.loaded);
        assert_eq!(ev.missing_cols, vec![0]);
    }

    #[test]
    fn bias_evicts_loaded_first() {
        let c = ChunkCache::new(2);
        c.insert(chunk(1), &[0]); // loaded
        c.insert(chunk(2), &[]); // unloaded
        c.get(ChunkId(1)); // 1 is *more* recent, but loaded
        let ev = c.insert(chunk(3), &[]).expect("eviction");
        assert_eq!(ev.id, ChunkId(1), "loaded chunk evicted despite recency");
        assert!(ev.loaded);
        assert!(ev.missing_cols.is_empty());
        assert!(c.peek(ChunkId(2)).is_some());
    }

    #[test]
    fn partially_loaded_chunk_is_not_eviction_biased() {
        // A chunk with one of two cells stored still needs re-conversion if
        // lost, so the bias must treat it like an unloaded chunk.
        let c = ChunkCache::new(2);
        c.insert(chunk_cols(1, 2), &[0]); // half loaded
        c.insert(chunk_cols(2, 2), &[]); // unloaded
        c.get(ChunkId(2)); // 1 is now the LRU entry
        let ev = c.insert(chunk_cols(3, 2), &[]).expect("eviction");
        assert_eq!(ev.id, ChunkId(1), "plain LRU applies — no loaded bias");
        assert!(!ev.loaded);
        assert_eq!(ev.missing_cols, vec![1], "only the unstored cell is owed");
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let c = ChunkCache::new(1);
        c.insert(chunk(1), &[]);
        assert!(c.insert(chunk(1), &[0]).is_none());
        // mark via reinsert took effect:
        assert!(c.unloaded_cells().is_empty());
    }

    #[test]
    fn reinsert_unions_loaded_cells() {
        let c = ChunkCache::new(2);
        c.insert(chunk_cols(1, 2), &[1]);
        // A racing re-delivery that only knows about column 0 being stored
        // must not un-mark column 1.
        c.insert(chunk_cols(1, 2), &[0]);
        assert!(c.unloaded_cells().is_empty(), "bits union, never clear");
    }

    #[test]
    fn unloaded_cells_oldest_first_with_missing_columns() {
        let c = ChunkCache::new(4);
        c.insert(chunk_cols(5, 2), &[]);
        c.insert(chunk_cols(3, 2), &[]);
        c.insert(chunk_cols(7, 2), &[0, 1]);
        // Recency must not matter — touch 5.
        c.get(ChunkId(5));
        let cells = c.unloaded_cells();
        let ids: Vec<u32> = cells.iter().map(|(ch, _)| ch.id.0).collect();
        assert_eq!(ids, vec![5, 3], "insertion order, fully loaded excluded");
        assert_eq!(cells[0].1, vec![0, 1]);
        c.mark_loaded(ChunkId(5), &[0]);
        let cells = c.unloaded_cells();
        assert_eq!(cells[0].1, vec![1], "cell-granular marking");
        c.mark_loaded(ChunkId(5), &[1]);
        c.mark_loaded(ChunkId(3), &[0, 1]);
        assert!(c.unloaded_cells().is_empty());
    }

    #[test]
    fn covers_checks_columns() {
        use scanraw_types::ColumnData;
        let c = ChunkCache::new(2);
        let mut b = BinaryChunk::empty(ChunkId(1), 0, 2, 2);
        b.columns[0] = Some(ColumnData::Int64(vec![1, 2]));
        c.insert(Arc::new(b), &[]);
        assert!(c.covers(ChunkId(1), &[0]));
        assert!(!c.covers(ChunkId(1), &[0, 1]));
        assert!(!c.covers(ChunkId(9), &[0]));
    }

    #[test]
    fn eviction_counter() {
        let c = ChunkCache::new(1);
        c.insert(chunk(1), &[]);
        c.insert(chunk(2), &[]);
        c.insert(chunk(3), &[]);
        assert_eq!(c.counters().evictions, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn attached_obs_sees_hits_misses_evictions() {
        let obs = Obs::with_journal_capacity(64);
        let c = ChunkCache::new(1);
        c.attach_obs(&obs);
        c.insert(chunk(1), &[]);
        c.get(ChunkId(1)); // hit
        c.get(ChunkId(9)); // miss
        c.insert(chunk(2), &[]); // evicts 1
        assert_eq!(obs.metrics.counter_value("cache.chunk.hit"), Some(1));
        assert_eq!(obs.metrics.counter_value("cache.chunk.miss"), Some(1));
        assert_eq!(obs.metrics.counter_value("cache.chunk.evict"), Some(1));
        assert_eq!(
            obs.journal
                .count_where(|e| matches!(e, ObsEvent::CacheEvict { chunk: 1, .. })),
            1
        );
        // Journal and struct counters agree.
        let counters = c.counters();
        assert_eq!(
            counters,
            CacheCounters {
                hits: 1,
                misses: 1,
                evictions: 1
            }
        );
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        ChunkCache::new(0);
    }
}
