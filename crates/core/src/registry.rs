//! Operator registry: one ScanRaw instance per raw file, shared by queries.
//!
//! "When a new query arrives, the execution engine first checks the existence
//! of a corresponding ScanRaw operator. If such an operator exists, it is
//! connected to the query execution plan. Only otherwise it is created. …
//! a ScanRaw instance is completely deleted whenever it loaded the entire raw
//! file into the database." (paper §3.3)

use crate::operator::ScanRaw;
use parking_lot::Mutex;
use scanraw_types::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry keyed by raw-file name. Cheap to clone.
#[derive(Clone, Default)]
pub struct OperatorRegistry {
    inner: Arc<Mutex<HashMap<String, Arc<ScanRaw>>>>,
}

impl OperatorRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the operator for `raw_file`, creating it with `make` on first
    /// use.
    ///
    /// # Errors
    ///
    /// Propagates the error from `make` when first-use construction fails;
    /// nothing is cached in that case.
    pub fn get_or_create<F>(&self, raw_file: &str, make: F) -> Result<Arc<ScanRaw>>
    where
        F: FnOnce() -> Result<Arc<ScanRaw>>,
    {
        let mut map = self.inner.lock();
        if let Some(op) = map.get(raw_file) {
            return Ok(op.clone());
        }
        let op = make()?;
        map.insert(raw_file.to_string(), op.clone());
        Ok(op)
    }

    /// Looks up an existing operator.
    pub fn get(&self, raw_file: &str) -> Option<Arc<ScanRaw>> {
        self.inner.lock().get(raw_file).cloned()
    }

    /// Drops operators that are fully loaded at column granularity: every
    /// cell of every column their query history registered is durable in the
    /// database (see [`ScanRaw::fully_loaded`]) — they have morphed into
    /// plain heap scans for their observed workload. Returns how many were
    /// deleted.
    pub fn reap_fully_loaded(&self) -> usize {
        let mut map = self.inner.lock();
        let before = map.len();
        map.retain(|_, op| !op.fully_loaded());
        before - map.len()
    }

    /// Removes one operator explicitly.
    pub fn remove(&self, raw_file: &str) -> bool {
        self.inner.lock().remove(raw_file).is_some()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
