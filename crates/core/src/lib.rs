//! # ScanRaw — parallel in-situ processing over raw files
//!
//! This crate is the paper's primary contribution (Cheng & Rusu, SIGMOD
//! 2014): a database physical operator that queries raw files in place with a
//! super-scalar parallel pipeline, and *speculatively loads* converted data
//! into the database whenever the disk would otherwise sit idle.
//!
//! ## Architecture (paper Figures 2 and 3)
//!
//! ```text
//!              ┌─────────── worker pool (TOKENIZE / PARSE+MAP) ──────────┐
//! raw file ──READ──▶ [text chunks buffer] ──▶ [position buffer] ──▶ cache+output ──▶ engine
//!     ▲                                                              │
//!     └────────────── scheduler (control messages) ◀──── WRITE ◀─────┘
//!                                                          │
//!                                                       database
//! ```
//!
//! * [`operator::ScanRaw`] — the operator: owns the binary-chunk cache, the
//!   persistent WRITE thread, and the per-scan pipeline threads. An instance
//!   is attached to a raw file, not to a query, and survives across queries
//!   (paper §3.3).
//! * [`scheduler`] — the event-driven scheduler implementing the WRITE
//!   policies of [`WritePolicy`]: external tables, eager ETL, buffered,
//!   invisible, and the paper's speculative loading with its end-of-scan
//!   safeguard (§4).
//! * [`cache`] — the binary chunks cache: LRU biased toward evicting chunks
//!   already loaded in the database (§3.1 "Caching").
//! * [`profile`] — per-stage timing and worker-utilization tracking (the data
//!   behind Figures 5 and 9).
//! * [`registry`] — one operator per raw file, shared by the execution engine
//!   across query plans (§3.3 "Integration with a database").
//!
//! ## Worker scheduling note
//!
//! The paper separates TOKENIZE/PARSE *consumer* threads that request workers
//! from a scheduler-managed pool. Here each pool worker selects work directly
//! from the stage buffers, preferring the downstream (PARSE) buffer — the
//! same dynamic stage assignment and back-pressure behaviour with fewer
//! moving parts; buffer capacities still gate progress exactly as in §3.2.1.
//! The scheduler thread retains everything observable: READ/WRITE disk
//! arbitration and the write policies.
//!
//! [`WritePolicy`]: scanraw_types::WritePolicy

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod cache;
pub mod operator;
pub mod profile;
pub mod registry;
mod retry;
pub mod scheduler;
pub mod stream;

pub use cache::{CacheCounters, ChunkCache};
pub use operator::{
    ConvertScope, PushdownFilter, ResourceAdvice, ScanRaw, ScanRequest, ScanSummary,
};
pub use profile::{Profiler, Stage};
pub use registry::OperatorRegistry;
pub use scanraw_types::{ScanRawConfig, WritePolicy};
pub use scheduler::{ColumnHeat, SchedulerReport};
pub use stream::{ChunkStream, ExecHandle, ExecTask};
