//! Pipeline instrumentation: per-stage time and worker utilization.
//!
//! "The code contains special function calls to harness detailed profiling
//! data" (paper §5, Implementation). The same collector backs two figures:
//! per-stage time per chunk (Figure 5) and CPU utilization over progress
//! (Figure 9, together with the device's own utilization timeline).

use parking_lot::Mutex;
use scanraw_obs::{Histogram, Obs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Pipeline stages that are timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    Read,
    Tokenize,
    Parse,
    Write,
    /// Delivery of cache/database chunks (no conversion).
    Deliver,
    /// Consumer-side query execution (predicate + partial aggregation) run
    /// on the worker pool for chunk-parallel queries.
    Exec,
}

impl Stage {
    pub const ALL: [Stage; 6] = [
        Stage::Read,
        Stage::Tokenize,
        Stage::Parse,
        Stage::Write,
        Stage::Deliver,
        Stage::Exec,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "READ",
            Stage::Tokenize => "TOKENIZE",
            Stage::Parse => "PARSE",
            Stage::Write => "WRITE",
            Stage::Deliver => "DELIVER",
            Stage::Exec => "EXEC",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Read => 0,
            Stage::Tokenize => 1,
            Stage::Parse => 2,
            Stage::Write => 3,
            Stage::Deliver => 4,
            Stage::Exec => 5,
        }
    }
}

/// One timed interval of CPU work (for the utilization timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySpan {
    pub stage: Stage,
    pub start: Duration,
    pub end: Duration,
}

/// Thread-safe stage-time collector. Cheap to clone.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

#[derive(Default)]
struct ProfilerInner {
    /// Total nanoseconds per stage.
    totals: [AtomicU64; 6],
    /// Chunks processed per stage.
    chunks: [AtomicU64; 6],
    /// CPU busy spans, for utilization timelines (opt-in).
    spans: Mutex<Vec<BusySpan>>,
    record_spans: AtomicU64, // 0 = off, 1 = on
    /// One duration histogram per stage, attached at most once; the hot
    /// path pays a single atomic load when unattached.
    stage_histograms: OnceLock<[Histogram; 6]>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors per-chunk stage timings onto `pipeline.stage.<name>.nanos`
    /// histograms in the given registry. Attaching twice is a no-op.
    pub fn attach_obs(&self, obs: &Obs) {
        let _ = self.inner.stage_histograms.set(Stage::ALL.map(|s| {
            obs.metrics
                .duration_histogram(&format!("pipeline.stage.{}.nanos", s.name().to_lowercase()))
        }));
    }

    /// Enables busy-span recording (needed only for utilization timelines).
    pub fn record_spans(&self, on: bool) {
        self.inner
            .record_spans
            // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
            .store(u64::from(on), Ordering::Relaxed);
    }

    /// Records one completed unit of stage work.
    ///
    /// `start`/`end` are offsets from the operator clock's epoch; pass
    /// `Duration::ZERO` twice when only totals matter and span recording is
    /// off.
    pub fn record(&self, stage: Stage, elapsed: Duration, start: Duration, end: Duration) {
        let i = stage.index();
        // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
        self.inner.totals[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.inner.chunks[i].fetch_add(1, Ordering::Relaxed);
        if let Some(histograms) = self.inner.stage_histograms.get() {
            histograms[i].observe_duration(elapsed);
        }
        // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
        if self.inner.record_spans.load(Ordering::Relaxed) != 0 {
            self.inner.spans.lock().push(BusySpan { stage, start, end });
        }
    }

    /// Total time spent in a stage across all chunks and workers.
    pub fn total(&self, stage: Stage) -> Duration {
        // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
        Duration::from_nanos(self.inner.totals[stage.index()].load(Ordering::Relaxed))
    }

    /// Number of chunk-units processed by a stage.
    pub fn chunks(&self, stage: Stage) -> u64 {
        // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
        self.inner.chunks[stage.index()].load(Ordering::Relaxed)
    }

    /// Average time per chunk in a stage (None if the stage never ran).
    pub fn per_chunk(&self, stage: Stage) -> Option<Duration> {
        let n = self.chunks(stage);
        if n == 0 {
            None
        } else {
            Some(self.total(stage) / n as u32)
        }
    }

    /// All recorded busy spans (empty unless [`Profiler::record_spans`]).
    pub fn spans(&self) -> Vec<BusySpan> {
        self.inner.spans.lock().clone()
    }

    /// CPU utilization per window: total busy time of CPU stages
    /// (TOKENIZE + PARSE) in each window divided by the window length.
    /// With `n` workers the value ranges up to `n` (×100 = the "800%" of
    /// paper Figure 9).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn cpu_utilization_timeline(&self, window: Duration) -> Vec<(Duration, f64)> {
        assert!(!window.is_zero());
        let spans = self.inner.spans.lock();
        // Guard against degenerate spans: zero-length spans contribute no
        // busy time but would stretch the timeline, and spans recorded with
        // end < start (clock skew between workers) would underflow the
        // Duration arithmetic below. Both are dropped.
        let cpu: Vec<&BusySpan> = spans
            .iter()
            .filter(|s| matches!(s.stage, Stage::Tokenize | Stage::Parse))
            .filter(|s| s.end > s.start)
            .collect();
        if cpu.is_empty() {
            return Vec::new();
        }
        let t0 = cpu.iter().map(|s| s.start).min().expect("non-empty");
        let t1 = cpu.iter().map(|s| s.end).max().expect("non-empty");
        let n = ((t1 - t0).as_nanos() / window.as_nanos()) as usize + 1;
        let mut busy = vec![Duration::ZERO; n];
        for s in cpu {
            let mut cur = s.start;
            while cur < s.end {
                let idx = ((cur - t0).as_nanos() / window.as_nanos()) as usize;
                let win_end = t0 + window * (idx as u32 + 1);
                let seg_end = s.end.min(win_end);
                busy[idx] += seg_end - cur;
                cur = seg_end;
            }
        }
        (0..n)
            .map(|i| {
                (
                    t0 + window * i as u32,
                    busy[i].as_secs_f64() / window.as_secs_f64(),
                )
            })
            .collect()
    }

    /// Clears all accumulated data.
    pub fn reset(&self) {
        for t in &self.inner.totals {
            // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
            t.store(0, Ordering::Relaxed);
        }
        for c in &self.inner.chunks {
            // relaxed-ok: independent timing statistics; totals are read after the pipeline joins
            c.store(0, Ordering::Relaxed);
        }
        self.inner.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn totals_and_averages() {
        let p = Profiler::new();
        p.record(Stage::Parse, ms(10), ms(0), ms(10));
        p.record(Stage::Parse, ms(30), ms(10), ms(40));
        p.record(Stage::Read, ms(5), ms(0), ms(5));
        assert_eq!(p.total(Stage::Parse), ms(40));
        assert_eq!(p.chunks(Stage::Parse), 2);
        assert_eq!(p.per_chunk(Stage::Parse), Some(ms(20)));
        assert_eq!(p.per_chunk(Stage::Write), None);
    }

    #[test]
    fn spans_only_when_enabled() {
        let p = Profiler::new();
        p.record(Stage::Parse, ms(1), ms(0), ms(1));
        assert!(p.spans().is_empty());
        p.record_spans(true);
        p.record(Stage::Parse, ms(1), ms(1), ms(2));
        assert_eq!(p.spans().len(), 1);
    }

    #[test]
    fn cpu_timeline_counts_only_cpu_stages() {
        let p = Profiler::new();
        p.record_spans(true);
        p.record(Stage::Read, ms(100), ms(0), ms(100)); // not CPU
        p.record(Stage::Parse, ms(50), ms(0), ms(50));
        p.record(Stage::Tokenize, ms(50), ms(50), ms(100));
        let tl = p.cpu_utilization_timeline(ms(100));
        assert_eq!(tl.len(), 2);
        assert!((tl[0].1 - 1.0).abs() < 1e-9, "{tl:?}");
    }

    #[test]
    fn overlapping_workers_exceed_one() {
        let p = Profiler::new();
        p.record_spans(true);
        // Two workers busy over the same window.
        p.record(Stage::Parse, ms(100), ms(0), ms(100));
        p.record(Stage::Parse, ms(100), ms(0), ms(100));
        let tl = p.cpu_utilization_timeline(ms(100));
        assert!((tl[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.record_spans(true);
        p.record(Stage::Write, ms(3), ms(0), ms(3));
        p.reset();
        assert_eq!(p.total(Stage::Write), Duration::ZERO);
        assert_eq!(p.chunks(Stage::Write), 0);
        assert!(p.spans().is_empty());
    }

    #[test]
    fn timeline_ignores_zero_length_spans() {
        let p = Profiler::new();
        p.record_spans(true);
        // A zero-length span far in the future must not stretch the
        // timeline or contribute busy time.
        p.record(Stage::Parse, ms(0), ms(5000), ms(5000));
        p.record(Stage::Parse, ms(100), ms(0), ms(100));
        let tl = p.cpu_utilization_timeline(ms(100));
        assert_eq!(tl.len(), 2);
        assert!((tl[0].1 - 1.0).abs() < 1e-9, "{tl:?}");
        // Only zero-length spans → empty timeline, no panic.
        p.reset();
        p.record_spans(true);
        p.record(Stage::Tokenize, ms(0), ms(7), ms(7));
        assert!(p.cpu_utilization_timeline(ms(100)).is_empty());
    }

    #[test]
    fn timeline_ignores_inverted_spans() {
        let p = Profiler::new();
        p.record_spans(true);
        // end < start (e.g. clock skew) previously underflowed Duration
        // subtraction; such spans are now dropped.
        p.record(Stage::Parse, ms(10), ms(50), ms(40));
        p.record(Stage::Parse, ms(100), ms(0), ms(100));
        let tl = p.cpu_utilization_timeline(ms(100));
        assert_eq!(tl.len(), 2);
        assert!((tl[0].1 - 1.0).abs() < 1e-9, "{tl:?}");
        // Only inverted spans → empty, no panic.
        p.reset();
        p.record_spans(true);
        p.record(Stage::Tokenize, ms(1), ms(9), ms(3));
        assert!(p.cpu_utilization_timeline(ms(100)).is_empty());
    }

    #[test]
    fn attached_obs_records_stage_histograms() {
        let p = Profiler::new();
        let obs = scanraw_obs::Obs::new();
        p.attach_obs(&obs);
        p.record(Stage::Parse, ms(10), ms(0), ms(10));
        p.record(Stage::Parse, ms(30), ms(10), ms(40));
        let snap = obs
            .metrics
            .histogram_snapshot("pipeline.stage.parse.nanos")
            .expect("histogram registered");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, ms(40).as_nanos() as u64);
        // Stages that never ran stay at zero.
        let read = obs
            .metrics
            .histogram_snapshot("pipeline.stage.read.nanos")
            .expect("registered at attach time");
        assert_eq!(read.count, 0);
    }

    #[test]
    fn stage_names() {
        assert_eq!(Stage::Tokenize.name(), "TOKENIZE");
        assert_eq!(Stage::Exec.name(), "EXEC");
        assert_eq!(Stage::ALL.len(), 6);
    }
}
