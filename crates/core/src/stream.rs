//! The chunk stream a query plan consumes from ScanRaw.
//!
//! ScanRaw is not a pull-based operator: it pre-fetches chunks continuously
//! and the execution engine synchronizes with it through the binary chunks
//! buffer (paper §3.1, "Pre-fetching"). [`ChunkStream`] is the engine-facing
//! end of that buffer: an iterator of converted chunks plus a [`finish`]
//! method that tears the per-scan pipeline down and reports what happened.
//!
//! [`finish`]: ChunkStream::finish

use crate::scheduler::{Event, SchedulerReport};
use crossbeam::channel::{Receiver, Sender};
use scanraw_obs::{Obs, ObsEvent, SpanCtx};
use scanraw_simio::SharedClock;
use scanraw_types::{BinaryChunk, Error, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of consumer-side work (predicate evaluation + partial aggregation
/// over one delivered chunk) handed to the worker pool.
pub type ExecTask = Box<dyn FnOnce() + Send + 'static>;

/// Engine-facing handle for submitting [`ExecTask`]s to the scan's worker
/// pool. Cloneable; the pool keeps serving tasks until every handle (and the
/// stream itself) has been dropped.
#[derive(Clone)]
pub struct ExecHandle {
    tx: Sender<ExecTask>,
}

impl ExecHandle {
    pub(crate) fn new(tx: Sender<ExecTask>) -> Self {
        ExecHandle { tx }
    }

    /// Submits a task to the worker pool. On failure (the pool has already
    /// shut down) the task is handed back so the caller can run it inline.
    ///
    /// # Errors
    ///
    /// Returns `Err(task)` when every worker has exited; the task has not
    /// run and ownership returns to the caller.
    pub fn submit(&self, task: ExecTask) -> std::result::Result<(), ExecTask> {
        self.tx.send(task).map_err(|e| e.0)
    }
}

/// Counters shared between the pipeline threads and the stream.
///
/// Pipeline threads increment with `Release` stores and [`ChunkStream::finish`]
/// reads with `Acquire` loads, so the totals observed at `finish()` are
/// ordered after every pipeline-side increment even though the thread joins
/// already provide a happens-before edge — the explicit pairing keeps the
/// counters correct if a future refactor reads them mid-scan.
#[derive(Debug, Default)]
pub(crate) struct ScanCounters {
    pub from_cache: AtomicUsize,
    pub from_db: AtomicUsize,
    pub from_raw: AtomicUsize,
    /// Chunks served by a hybrid database+raw merge (§3.2.1).
    pub hybrid: AtomicUsize,
    pub skipped: AtomicUsize,
}

/// What one scan did, returned by [`ChunkStream::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSummary {
    /// Chunks delivered to the engine.
    pub chunks_delivered: usize,
    /// Delivered straight from the binary chunks cache.
    pub from_cache: usize,
    /// Read from the database in binary format (no tokenize/parse).
    pub from_db: usize,
    /// Converted from the raw file.
    pub from_raw: usize,
    /// Served by a hybrid merge: loaded columns from the database, missing
    /// columns converted from the raw file (§3.2.1).
    pub from_hybrid: usize,
    /// Skipped entirely via min/max chunk statistics.
    pub skipped: usize,
    /// Stores queued by the scheduling policy during this scan.
    pub writes_queued: u64,
    /// … of which triggered by the speculative READ-blocked rule.
    pub speculative_writes: u64,
    /// … of which triggered by the end-of-scan safeguard.
    pub safeguard_writes: u64,
    /// … of which triggered by cache eviction (buffered policy).
    pub eviction_writes: u64,
    /// Wall (or virtual) time from scan start to `finish`.
    pub elapsed: Duration,
}

pub(crate) struct ScanState {
    pub read_handle: JoinHandle<Result<()>>,
    pub worker_handles: Vec<JoinHandle<()>>,
    pub scheduler_handle: JoinHandle<SchedulerReport>,
    pub events_tx: Sender<Event>,
    /// Block on the write barrier before reporting completion (ETL-style
    /// policies where loading is part of the query).
    pub wait_for_writes: bool,
    pub barrier: Box<dyn Fn() + Send>,
    pub counters: Arc<ScanCounters>,
    pub clock: SharedClock,
    pub started_at: Duration,
    pub obs: Obs,
    pub table: String,
    /// The scan's own span (child of the query root), ended when the stream
    /// finishes or is abandoned.
    pub scan_span: Option<SpanCtx>,
    /// Keeps the consumer-execution channel alive for the scan's lifetime so
    /// engine-held [`ExecHandle`] clones stay connected. Dropped before the
    /// worker joins — workers only exit their EXEC phase on disconnect.
    pub exec_tx: Option<Sender<ExecTask>>,
    /// Size of the worker pool (0 = sequential regime, no EXEC service).
    pub workers: usize,
}

/// Stream of converted chunks produced by one [`crate::ScanRaw::scan`].
pub struct ChunkStream {
    rx: Option<Receiver<Result<Arc<BinaryChunk>>>>,
    state: Option<ScanState>,
    delivered: usize,
    rows: u64,
    first_error: Option<Error>,
}

impl ChunkStream {
    pub(crate) fn new(rx: Receiver<Result<Arc<BinaryChunk>>>, state: ScanState) -> Self {
        ChunkStream {
            rx: Some(rx),
            state: Some(state),
            delivered: 0,
            rows: 0,
            first_error: None,
        }
    }

    /// Next converted chunk; `None` when the scan is exhausted. Errors from
    /// the pipeline surface here once and end the stream.
    pub fn next_chunk(&mut self) -> Option<Arc<BinaryChunk>> {
        let rx = self.rx.as_ref()?;
        loop {
            match rx.recv() {
                Ok(Ok(chunk)) => {
                    self.delivered += 1;
                    self.rows += chunk.rows as u64;
                    return Some(chunk);
                }
                Ok(Err(e)) => {
                    if self.first_error.is_none() {
                        self.first_error = Some(e);
                    }
                    // Keep draining; the pipeline unwinds after an error.
                }
                Err(_) => return None,
            }
        }
    }

    /// Handle for submitting consumer-execution tasks to the scan's worker
    /// pool, or `None` when the scan runs in the sequential regime (zero
    /// workers). Tasks are served concurrently with TOKENIZE/PARSE while the
    /// conversion side is active and exclusively afterwards.
    pub fn exec_handle(&self) -> Option<ExecHandle> {
        let state = self.state.as_ref()?;
        state.exec_tx.as_ref().map(|tx| ExecHandle::new(tx.clone()))
    }

    /// Number of pool workers serving this scan (0 = sequential regime).
    pub fn workers(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.workers)
    }

    /// Consumes the rest of the stream, joins every pipeline thread, and
    /// returns the scan summary (or the first pipeline error).
    ///
    /// # Errors
    ///
    /// Returns the first error any pipeline stage reported (parse errors,
    /// I/O failures, a panicked worker), or a `Pipeline` error if the scan
    /// state was already torn down.
    pub fn finish(mut self) -> Result<ScanSummary> {
        // Drain whatever the engine did not consume.
        while self.next_chunk().is_some() {}
        // All producers are gone once the channel disconnects; drop our end.
        self.rx = None;

        let Some(state) = self.state.take() else {
            // Unreachable by construction (`finish` consumes `self`), but a
            // missing state must not abort the caller's thread.
            return Err(Error::Pipeline("scan state already torn down".into()));
        };
        let mut state = state;
        // Disconnect the consumer-execution channel before joining: workers
        // park in their EXEC phase until every sender is gone, and this is
        // the last one once the engine has dropped its handles.
        state.exec_tx = None;
        let read_result = state
            .read_handle
            .join()
            .map_err(|_| Error::Pipeline("READ thread panicked".into()))?;
        for h in state.worker_handles {
            h.join()
                .map_err(|_| Error::Pipeline("worker thread panicked".into()))?;
        }
        let _ = state.events_tx.send(Event::QueryDone);
        let report = state
            .scheduler_handle
            .join()
            .map_err(|_| Error::Pipeline("scheduler thread panicked".into()))?;
        if state.wait_for_writes {
            (state.barrier)();
        }
        let elapsed = state.clock.now().saturating_sub(state.started_at);
        if let Some(ctx) = state.scan_span {
            state.obs.trace.end(ctx.span);
        }
        state
            .obs
            .metrics
            .duration_histogram("query.latency.nanos")
            .observe_duration(elapsed);
        state.obs.event(ObsEvent::QueryEnd {
            table: state.table.clone(),
            chunks: self.delivered as u64,
            rows: self.rows,
            elapsed_micros: elapsed.as_micros() as u64,
        });

        if let Some(e) = self.first_error.take() {
            return Err(e);
        }
        read_result?;

        Ok(ScanSummary {
            chunks_delivered: self.delivered,
            // Acquire pairs with the pipeline threads' Release increments.
            from_cache: state.counters.from_cache.load(Ordering::Acquire),
            from_db: state.counters.from_db.load(Ordering::Acquire),
            from_raw: state.counters.from_raw.load(Ordering::Acquire),
            from_hybrid: state.counters.hybrid.load(Ordering::Acquire),
            skipped: state.counters.skipped.load(Ordering::Acquire),
            writes_queued: report.writes_queued,
            speculative_writes: report.speculative_writes,
            safeguard_writes: report.safeguard_writes,
            eviction_writes: report.eviction_writes,
            elapsed,
        })
    }
}

impl Iterator for ChunkStream {
    type Item = Arc<BinaryChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk()
    }
}

impl Drop for ChunkStream {
    fn drop(&mut self) {
        // Abandoned stream: drop the receiver so producers unwind, then join
        // them to avoid leaking threads mid-scan.
        self.rx = None;
        if let Some(mut state) = self.state.take() {
            state.exec_tx = None;
            let _ = state.read_handle.join();
            for h in state.worker_handles {
                let _ = h.join();
            }
            let _ = state.events_tx.send(Event::QueryDone);
            let _ = state.scheduler_handle.join();
            if let Some(ctx) = state.scan_span {
                state.obs.trace.end(ctx.span);
            }
        }
    }
}
