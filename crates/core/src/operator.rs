//! The ScanRaw operator: per-file state plus the per-scan pipeline.
//!
//! One [`ScanRaw`] instance is attached to one raw file and lives across
//! queries (paper §3.3): it owns the binary chunks cache, the persistent
//! WRITE thread, and the learned chunk layout. Each [`ScanRaw::scan`] spawns
//! the per-scan pipeline — READ thread, conversion worker pool, scheduler —
//! and returns a [`ChunkStream`] the execution engine consumes.
//!
//! Chunk delivery order follows §3.2.1: cached chunks first, then chunks
//! loaded in the database (binary read, no conversion), then raw-file chunks
//! through the TOKENIZE/PARSE pipeline.

use crate::cache::ChunkCache;
use crate::profile::{Profiler, Stage};
use crate::retry::{with_retry, RetryPolicy, DB_FALLBACK_COUNTER};
use crate::scheduler::{run_scheduler, ColumnHeat, Event, Writer};
use crate::stream::{ChunkStream, ExecTask, ScanCounters, ScanState};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use scanraw_obs::trace::{self, worker_label, SpanCtx};
use scanraw_obs::{Histogram, Obs, ObsEvent};
use scanraw_rawfile::chunker::{read_chunk_at, ChunkReader};
use scanraw_rawfile::parse::{parse_chunk_filtered, RowFilter};
use scanraw_rawfile::{parse_chunk_projected, tokenize_chunk_selective, TextDialect};
use scanraw_storage::Database;
use scanraw_types::{
    BinaryChunk, ChunkId, ChunkMeta, Error, PositionalMap, RangePredicate, Result, ScanRawConfig,
    Schema, TextChunk, Value, WritePolicy,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Push-down selection request: predicate columns are parsed first, the rest
/// only for qualifying rows (paper §2, PARSE). Chunks produced under push-down
/// contain only qualifying rows and are therefore neither cached nor loaded
/// — the paper's bookkeeping argument against mixing push-down with loading.
pub struct PushdownFilter {
    /// Columns the predicate needs.
    pub columns: Vec<usize>,
    /// Row predicate over the values of `columns`, in order.
    pub predicate: RowPredicateFn,
}

/// Shared row predicate: receives the pushed-down columns' values, in order.
pub type RowPredicateFn = Arc<dyn Fn(&[Value]) -> bool + Send + Sync>;

impl std::fmt::Debug for PushdownFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PushdownFilter")
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

/// Resource-manager feedback derived from the operator's own measurements
/// (paper §3.3, "Resource management"): the scheduler is in the best position
/// to monitor utilization, and relays requests for more CPU — or offers to
/// release it — to the database resource manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceAdvice {
    /// Conversion dominates: the pipeline would profit from more workers.
    CpuBound {
        /// Workers that would bring conversion in balance with the device.
        suggested_workers: usize,
    },
    /// The device dominates: extra workers sit idle and can be released.
    IoBound {
        /// Workers sufficient to keep up with the device.
        sufficient_workers: usize,
    },
    /// Conversion and device throughput are within 20% of each other.
    Balanced,
    /// Not enough measurements yet (no conversions or no device activity).
    Unknown,
}

/// Which columns the conversion stages materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvertScope {
    /// Convert every column of the schema regardless of the projection —
    /// optimal when execution is I/O-bound, and the paper's experimental
    /// default ("converting all the columns from the raw file is the optimal
    /// choice since it avoids additional reading", §3.2.1).
    AllColumns,
    /// Convert only the projected columns (selective parsing).
    ProjectionOnly,
}

/// One scan request from the execution engine.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Columns the query needs (order irrelevant; deduplicated).
    pub projection: Vec<usize>,
    pub convert: ConvertScope,
    /// Range predicate for chunk skipping via min/max statistics.
    pub skip_predicate: Option<RangePredicate>,
    /// Override for selective tokenizing: number of leading attributes to
    /// map. Defaults to `last needed column + 1`.
    pub cols_mapped: Option<usize>,
    /// Push-down selection evaluated during PARSE (disables caching and
    /// loading of the produced chunks).
    pub pushdown: Option<Arc<PushdownFilter>>,
    /// Causal-trace context of the issuing query. When set, the scan and
    /// every stage it runs record child spans under it.
    pub trace: Option<SpanCtx>,
}

impl ScanRequest {
    /// Scan that needs the given columns, converting all (paper default).
    pub fn all_columns(projection: impl Into<Vec<usize>>) -> Self {
        ScanRequest {
            projection: projection.into(),
            convert: ConvertScope::AllColumns,
            skip_predicate: None,
            cols_mapped: None,
            pushdown: None,
            trace: None,
        }
    }

    /// Scan converting only the projected columns.
    pub fn projected(projection: impl Into<Vec<usize>>) -> Self {
        ScanRequest {
            projection: projection.into(),
            convert: ConvertScope::ProjectionOnly,
            skip_predicate: None,
            cols_mapped: None,
            pushdown: None,
            trace: None,
        }
    }

    /// Attaches a push-down selection filter.
    pub fn with_pushdown(mut self, filter: PushdownFilter) -> Self {
        self.pushdown = Some(Arc::new(filter));
        self
    }

    /// Attaches the issuing query's trace context.
    pub fn with_trace(mut self, ctx: SpanCtx) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Attaches a chunk-skipping predicate.
    pub fn with_skip_predicate(mut self, p: RangePredicate) -> Self {
        self.skip_predicate = Some(p);
        self
    }
}

pub use crate::stream::ScanSummary;

/// Raw chunk travelling through the text-chunks buffer, with optional
/// per-chunk conversion overrides for hybrid database+raw reads.
struct RawJob {
    text: TextChunk,
    /// Columns already loaded and read from the database, to be merged with
    /// the freshly converted ones (hybrid reads, §3.2.1).
    base: Option<Arc<BinaryChunk>>,
    /// Per-chunk conversion column override (hybrid: missing columns only).
    convert_cols: Option<Arc<Vec<usize>>>,
    /// Per-chunk tokenize-prefix override.
    cols_mapped: Option<usize>,
}

impl RawJob {
    fn plain(text: TextChunk) -> Self {
        RawJob {
            text,
            base: None,
            convert_cols: None,
            cols_mapped: None,
        }
    }
}

/// Tokenized chunk travelling through the position buffer.
struct TokenizedChunk {
    job: RawJob,
    map: PositionalMap,
}

/// Per-worker stage histograms (`pipeline.worker.<w>.<stage>.nanos`).
struct WorkerHists {
    tokenize: Histogram,
    parse: Histogram,
    exec: Histogram,
}

/// Scan-wide conversion parameters shared by READ and the workers.
struct ScanParams {
    convert_cols: Vec<usize>,
    cols_mapped: usize,
    pushdown: Option<Arc<PushdownFilter>>,
    /// Worker-pool size of this scan (0 = sequential regime).
    workers: usize,
    /// The scan's span context; pipeline threads pin it as their ambient
    /// span so stage spans attach under the scan.
    trace: Option<SpanCtx>,
}

/// The ScanRaw physical operator (paper §3).
pub struct ScanRaw {
    table: String,
    schema: Schema,
    dialect: TextDialect,
    raw_file: String,
    config: ScanRawConfig,
    db: Database,
    cache: ChunkCache,
    profiler: Profiler,
    obs: Obs,
    writer: Arc<Writer>,
    /// Per-column query-history heat: every scan registers its effective
    /// projection here, and the speculative scheduler prioritizes hot cells.
    heat: Arc<ColumnHeat>,
    /// Current worker-pool size; starts at `config.workers`, adjustable via
    /// [`ScanRaw::set_workers`] (resource-manager feedback, §3.3).
    workers: AtomicUsize,
    /// Positional maps cached across scans (None unless configured).
    map_cache: Option<Mutex<HashMap<ChunkId, PositionalMap>>>,
    /// True once a full sequential scan recorded the complete chunk layout.
    layout_known: AtomicBool,
    scans_run: AtomicUsize,
}

impl ScanRaw {
    /// Creates the operator and registers its table in the database catalog.
    ///
    /// # Errors
    ///
    /// Fails when `config` violates a pipeline invariant (zero buffer or
    /// chunk sizes), when the catalog rejects the table registration, or
    /// when the OS cannot spawn the persistent WRITE thread.
    pub fn create(
        db: Database,
        table: impl Into<String>,
        schema: Schema,
        dialect: TextDialect,
        raw_file: impl Into<String>,
        config: ScanRawConfig,
    ) -> Result<Arc<Self>> {
        config.validate()?;
        let table = table.into();
        let raw_file = raw_file.into();
        if !db.disk().exists(&raw_file) {
            return Err(Error::io(format!("raw file '{raw_file}' does not exist")));
        }
        // Attach to an existing catalog entry (an earlier operator for this
        // file may have been deleted after fully loading it, §3.3) or create
        // a fresh one.
        let mut layout_known = false;
        match db.catalog().table(&table) {
            Ok(entry) => {
                let t = entry.read();
                if t.schema != schema {
                    return Err(Error::Schema(format!(
                        "table '{table}' exists with a different schema"
                    )));
                }
                if t.raw_file != raw_file {
                    return Err(Error::storage(format!(
                        "table '{table}' is backed by '{}', not '{raw_file}'",
                        t.raw_file
                    )));
                }
                layout_known = t.layout_complete();
            }
            Err(_) => {
                db.create_table(&table, schema.clone(), &raw_file)?;
            }
        }
        let cache = ChunkCache::new(config.binary_cache_chunks);
        let map_cache_init = if config.cache_positional_maps {
            Some(Mutex::new(HashMap::new()))
        } else {
            None
        };
        let profiler = Profiler::new();
        // Journal timestamps follow the device clock so events line up with
        // simulated I/O; metrics are clock-agnostic.
        let obs_clock = db.disk().clock().clone();
        let obs = Obs::with_time_source(
            scanraw_obs::DEFAULT_JOURNAL_CAPACITY,
            Arc::new(move || obs_clock.now()),
        );
        cache.attach_obs(&obs);
        profiler.attach_obs(&obs);
        // The device mirrors its accounting into the first registry attached;
        // with several operators over one database that is the oldest one.
        db.disk().attach_obs(&obs.metrics);
        // Device ops record disk.read/disk.write spans under whatever span
        // is ambient on the calling thread.
        db.disk().attach_trace(&obs.trace);
        let writer = Arc::new(Writer::spawn(
            db.clone(),
            table.clone(),
            cache.clone(),
            profiler.clone(),
            obs.clone(),
            RetryPolicy {
                budget: config.io_retry_budget,
                backoff: config.io_retry_backoff,
            },
        )?);
        let workers = AtomicUsize::new(config.workers);
        Ok(Arc::new(ScanRaw {
            table,
            schema,
            dialect,
            raw_file,
            config,
            db,
            cache,
            profiler,
            obs,
            writer,
            heat: Arc::new(ColumnHeat::new()),
            workers,
            map_cache: map_cache_init,
            layout_known: AtomicBool::new(layout_known),
            scans_run: AtomicUsize::new(0),
        }))
    }

    pub fn table(&self) -> &str {
        &self.table
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn config(&self) -> &ScanRawConfig {
        &self.config
    }

    pub fn cache(&self) -> &ChunkCache {
        &self.cache
    }

    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The operator's observability handle: metrics registry plus event
    /// journal, shared by the cache, profiler, scheduler, and every scan.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current worker-pool size used by new scans.
    pub fn workers(&self) -> usize {
        // relaxed-ok: sizing hint read at scan start; no data is published through it
        self.workers.load(Ordering::Relaxed)
    }

    /// Resizes the worker pool for subsequent scans (in-flight scans keep
    /// their pool). This is the knob the resource manager turns after
    /// [`ScanRaw::resource_advice`]; the change lands in the journal.
    pub fn set_workers(&self, n: usize) {
        // relaxed-ok: sizing hint — in-flight scans intentionally keep their pool
        let from = self.workers.swap(n, Ordering::Relaxed);
        if from != n {
            self.obs.event(ObsEvent::WorkerScaled {
                from: from as u64,
                to: n as u64,
            });
        }
    }

    /// Advises the resource manager from accumulated stage measurements:
    /// compares per-worker conversion wall time against device time and
    /// suggests acquiring or releasing workers (paper §3.3).
    pub fn resource_advice(&self) -> ResourceAdvice {
        use crate::profile::Stage;
        let cpu = self.profiler.total(Stage::Tokenize) + self.profiler.total(Stage::Parse);
        let io = self.profiler.total(Stage::Read) + self.profiler.total(Stage::Write);
        if cpu.is_zero() || io.is_zero() {
            return ResourceAdvice::Unknown;
        }
        let workers = self.workers().max(1);
        let cpu_wall = cpu.as_secs_f64() / workers as f64;
        let io_wall = io.as_secs_f64();
        // Workers needed so conversion wall time matches device time.
        let balanced = (cpu.as_secs_f64() / io_wall).ceil().max(1.0) as usize;
        if cpu_wall > io_wall * 1.2 {
            ResourceAdvice::CpuBound {
                suggested_workers: balanced,
            }
        } else if io_wall > cpu_wall * 1.2 && balanced < workers {
            ResourceAdvice::IoBound {
                sufficient_workers: balanced,
            }
        } else {
            ResourceAdvice::Balanced
        }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Chunks written to the database over the operator's lifetime.
    pub fn chunks_written(&self) -> u64 {
        self.writer.written()
    }

    /// True once the WRITE path hit a permanent device fault and the operator
    /// degraded to external-table mode: queries keep answering from the raw
    /// file, but no further loading is attempted.
    pub fn load_degraded(&self) -> bool {
        self.writer.degraded()
    }

    /// Retries a device operation under the configured budget and backoff
    /// (see [`ScanRawConfig::io_retry_budget`]).
    fn io_retry<T>(&self, target: &str, op: impl FnMut() -> Result<T>) -> Result<T> {
        let policy = RetryPolicy {
            budget: self.config.io_retry_budget,
            backoff: self.config.io_retry_backoff,
        };
        with_retry(&policy, self.db.disk().clock(), &self.obs, target, op)
    }

    /// Journals that a database read of `chunk` could not be served (even
    /// after retries) and the READ stage is answering from the raw file.
    fn note_db_fallback(&self, chunk: ChunkId) {
        self.obs.event(ObsEvent::DbReadFallback {
            chunk: chunk.0 as u64,
        });
        self.obs.metrics.counter(DB_FALLBACK_COUNTER).inc();
        self.obs
            .trace
            .instant_current("db.fallback", vec![("chunk", chunk.0.to_string())]);
    }

    /// Number of scans served so far.
    pub fn scans_run(&self) -> usize {
        // relaxed-ok: monotonic statistic; no ordering with other state required
        self.scans_run.load(Ordering::Relaxed)
    }

    /// True when the chunk layout of the raw file is known (first full scan
    /// completed).
    pub fn layout_known(&self) -> bool {
        self.layout_known.load(Ordering::Acquire)
    }

    /// The operator's per-column heat tracker: query-history projection
    /// counts that steer column-granular speculative loading.
    pub fn heat(&self) -> &ColumnHeat {
        &self.heat
    }

    /// True when every cell of every *registered* column is inside the
    /// database — the point where ScanRaw has morphed into a heap scan and
    /// "a ScanRaw instance is completely deleted … whenever it loaded the
    /// entire raw file" (§3.3).
    ///
    /// Registered columns are the ones the observed query history touched
    /// (the operator's [`ColumnHeat`]). Under column granularity, loading
    /// is complete once those cells are durable: cold columns nobody has
    /// asked for don't keep the operator alive. An operator that has never
    /// served a scan has no registered columns and reports `false`.
    pub fn fully_loaded(&self) -> bool {
        let observed = self.heat.observed_columns();
        if observed.is_empty() {
            return false;
        }
        self.db
            .fully_loaded_for(&self.table, &observed)
            .unwrap_or(false)
    }

    /// Blocks until all queued database writes have completed.
    pub fn drain_writes(&self) {
        self.writer.barrier();
    }

    /// Starts a scan and returns the stream of converted chunks.
    ///
    /// # Errors
    ///
    /// Fails when the projection names a column outside the schema, when
    /// the raw file cannot be opened, or when a pipeline thread cannot be
    /// spawned.
    pub fn scan(self: &Arc<Self>, request: ScanRequest) -> Result<ChunkStream> {
        // relaxed-ok: monotonic statistic; no ordering with other state required
        self.scans_run.fetch_add(1, Ordering::Relaxed);
        let mut needed: Vec<usize> = request.projection.clone();
        needed.sort_unstable();
        needed.dedup();
        if needed.is_empty() {
            return Err(Error::query("scan needs at least one column"));
        }
        if let Some(&max) = needed.last() {
            if max >= self.schema.len() {
                return Err(Error::query(format!(
                    "column {max} out of range for schema of {}",
                    self.schema.len()
                )));
            }
        }
        let convert_cols: Vec<usize> = match request.convert {
            ConvertScope::AllColumns => (0..self.schema.len()).collect(),
            ConvertScope::ProjectionOnly => needed.clone(),
        };
        let cols_mapped = request
            .cols_mapped
            .unwrap_or_else(|| convert_cols.last().map(|&c| c + 1).unwrap_or(1))
            .clamp(1, self.schema.len());
        if let Some(pd) = &request.pushdown {
            for &c in &pd.columns {
                if c >= self.schema.len() {
                    return Err(Error::query(format!("pushdown column {c} out of range")));
                }
            }
            if self.config.hybrid_reads {
                return Err(Error::query(
                    "push-down selection is incompatible with hybrid reads",
                ));
            }
        }
        // Register the effective projection in the query-history heat: the
        // speculative scheduler prioritizes the cells hot queries touch.
        self.heat.observe(&needed);
        let workers = self.workers();
        // The scan span brackets the whole pipeline (ends when the stream
        // finishes); every stage span below hangs off it.
        let scan_span = request.trace.map(|ctx| {
            let id = self.obs.trace.begin(
                ctx.trace,
                Some(ctx.span),
                "scan",
                vec![("table", self.table.clone())],
            );
            SpanCtx {
                trace: ctx.trace,
                span: id,
            }
        });
        let params = Arc::new(ScanParams {
            convert_cols: convert_cols.clone(),
            cols_mapped,
            pushdown: request.pushdown.clone(),
            workers,
            trace: scan_span,
        });

        self.obs.event(ObsEvent::QueryStart {
            table: self.table.clone(),
            columns: needed.len() as u64,
        });
        let clock = self.db.disk().clock().clone();
        let started_at = clock.now();
        let counters = Arc::new(ScanCounters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let in_pipeline = Arc::new(AtomicUsize::new(0));

        let (out_tx, out_rx) =
            bounded::<Result<Arc<BinaryChunk>>>(self.config.binary_cache_chunks.max(2));
        let (events_tx, events_rx) = unbounded::<Event>();
        let (text_tx, text_rx) = bounded::<RawJob>(self.config.text_buffer_chunks);
        let (pos_tx, pos_rx) = bounded::<TokenizedChunk>(self.config.position_buffer_chunks);
        // Consumer-execution channel: the engine partitions delivered chunks
        // back onto this pool for predicate + partial-aggregate work.
        let (exec_tx, exec_rx) = unbounded::<ExecTask>();

        // ------------------------------------------------------------------
        // Plan chunk sources (cache → database → raw, §3.2.1).
        // ------------------------------------------------------------------
        let plan = self.plan_scan(&needed, request.skip_predicate.as_ref())?;
        counters.skipped.store(plan.skipped, Ordering::Release);

        // ------------------------------------------------------------------
        // READ thread.
        // ------------------------------------------------------------------
        let read_handle = {
            let op = self.clone();
            let out = out_tx.clone();
            let text_tx = text_tx.clone();
            let events = events_tx.clone();
            let counters = counters.clone();
            let stop = stop.clone();
            let in_pipeline = in_pipeline.clone();
            let params = params.clone();
            let writer = self.writer.clone();
            std::thread::Builder::new()
                .name(format!("scanraw-read-{}", self.table))
                .spawn(move || {
                    let r = op.read_thread(
                        plan,
                        out,
                        text_tx,
                        events.clone(),
                        counters,
                        stop,
                        in_pipeline,
                        &params,
                        writer,
                    );
                    let _ = events.send(Event::RawScanComplete);
                    r
                })
                .map_err(|e| Error::Pipeline(format!("spawn READ: {e}")))?
        };
        drop(text_tx);

        // ------------------------------------------------------------------
        // Worker pool (TOKENIZE / PARSE, dynamically assigned).
        // ------------------------------------------------------------------
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let op = self.clone();
            let text_rx = text_rx.clone();
            let pos_rx = pos_rx.clone();
            let pos_tx = pos_tx.clone();
            let out = out_tx.clone();
            let events = events_tx.clone();
            let exec_rx = exec_rx.clone();
            let counters = counters.clone();
            let stop = stop.clone();
            let in_pipeline = in_pipeline.clone();
            let params = params.clone();
            let h = std::thread::Builder::new()
                .name(format!("scanraw-worker-{}-{w}", self.table))
                .spawn(move || {
                    op.worker_loop(
                        w,
                        text_rx,
                        pos_rx,
                        pos_tx,
                        out,
                        events,
                        exec_rx,
                        counters,
                        stop,
                        in_pipeline,
                        &params,
                    );
                })
                .map_err(|e| Error::Pipeline(format!("spawn worker: {e}")))?;
            worker_handles.push(h);
        }
        drop(pos_tx);
        drop(pos_rx);
        drop(text_rx);
        drop(out_tx);
        drop(exec_rx);

        // ------------------------------------------------------------------
        // Scheduler thread (write policy).
        // ------------------------------------------------------------------
        let scheduler_handle = {
            let policy = self.config.write_policy;
            let cache = self.cache.clone();
            let writer = self.writer.clone();
            let db = self.db.clone();
            let table = self.table.clone();
            let events_tx2 = events_tx.clone();
            let obs = self.obs.clone();
            let heat = self.heat.clone();
            std::thread::Builder::new()
                .name(format!("scanraw-sched-{}", self.table))
                .spawn(move || {
                    run_scheduler(
                        policy, events_rx, events_tx2, cache, &writer, &db, &table, &heat, &obs,
                        scan_span,
                    )
                })
                .map_err(|e| Error::Pipeline(format!("spawn scheduler: {e}")))?
        };

        let wait_for_writes = matches!(
            self.config.write_policy,
            WritePolicy::Eager | WritePolicy::Buffered | WritePolicy::Invisible { .. }
        );
        let writer = self.writer.clone();
        let state = ScanState {
            read_handle,
            worker_handles,
            scheduler_handle,
            events_tx,
            wait_for_writes,
            barrier: Box::new(move || writer.barrier()),
            counters,
            clock,
            started_at,
            obs: self.obs.clone(),
            table: self.table.clone(),
            // Sequential regime has no pool to serve EXEC tasks: holding the
            // sender would strand engine-submitted work forever.
            exec_tx: (workers > 0).then_some(exec_tx),
            workers,
            scan_span,
        };
        Ok(ChunkStream::new(out_rx, state))
    }

    // ----------------------------------------------------------------------
    // Planning
    // ----------------------------------------------------------------------

    fn plan_scan(&self, needed: &[usize], skip: Option<&RangePredicate>) -> Result<ScanPlan> {
        if !self.layout_known() {
            // First scan: stream the whole file sequentially.
            return Ok(ScanPlan {
                cached: Vec::new(),
                from_db: Vec::new(),
                hybrid: Vec::new(),
                raw: Vec::new(),
                streaming: true,
                skipped: 0,
            });
        }
        let entry = self.db.catalog().table(&self.table)?;
        let entry = entry.read();
        let layout = entry
            .layout()
            .ok_or_else(|| Error::storage("layout flag set but catalog has no layout"))?;
        let mut cached = Vec::new();
        let mut from_db = Vec::new();
        let mut hybrid = Vec::new();
        let mut raw = Vec::new();
        let mut skipped = 0usize;
        for meta in layout.iter() {
            if let Some(pred) = skip {
                if self.config.chunk_skipping {
                    if let Some(stats) = entry.stats(meta.id) {
                        if let Some((lo, hi)) =
                            stats.bounds.get(pred.column).and_then(|b| b.as_ref())
                        {
                            if !pred.may_overlap(lo, hi) {
                                skipped += 1;
                                self.obs.event(ObsEvent::ChunkSkipped {
                                    chunk: meta.id.0 as u64,
                                });
                                continue;
                            }
                        }
                    }
                }
            }
            if self.cache.covers(meta.id, needed) {
                cached.push(*meta);
            } else if entry.is_loaded(meta.id, needed) {
                from_db.push(*meta);
            } else if self.config.hybrid_reads && !entry.loaded_columns(meta.id, needed).is_empty()
            {
                hybrid.push(*meta);
            } else {
                raw.push(*meta);
            }
        }
        Ok(ScanPlan {
            cached,
            from_db,
            hybrid,
            raw,
            streaming: false,
            skipped,
        })
    }

    // ----------------------------------------------------------------------
    // READ thread body
    // ----------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn read_thread(
        self: &Arc<Self>,
        plan: ScanPlan,
        out: Sender<Result<Arc<BinaryChunk>>>,
        text_tx: Sender<RawJob>,
        events: Sender<Event>,
        counters: Arc<ScanCounters>,
        stop: Arc<AtomicBool>,
        in_pipeline: Arc<AtomicUsize>,
        params: &Arc<ScanParams>,
        writer: Arc<Writer>,
    ) -> Result<()> {
        let clock = self.db.disk().clock().clone();
        // Pin the scan span as this thread's ambient context: every
        // read.chunk / retry / db.fallback / disk span below lands under it.
        let _ambient = params.trace.map(trace::set_current);

        // Phase 1: cached chunks — no I/O, no conversion.
        for meta in &plan.cached {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let _span = self.obs.trace.enter_current(
                "read.chunk",
                vec![
                    ("chunk", meta.id.0.to_string()),
                    ("source", "cache".to_string()),
                ],
            );
            let t0 = clock.now();
            match self.cache.get(meta.id) {
                Some(chunk) => {
                    counters.from_cache.fetch_add(1, Ordering::Release);
                    let t1 = clock.now();
                    self.profiler.record(Stage::Deliver, t1 - t0, t0, t1);
                    if out.send(Ok(chunk)).is_err() {
                        // relaxed-ok: advisory stop flag — readers need eventual visibility only
                        stop.store(true, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                None => {
                    // Raced out of the cache since planning; fall back to the
                    // database or raw file.
                    if let Ok(chunk) = self.retry_load_from_db(meta, &params.convert_cols) {
                        counters.from_db.fetch_add(1, Ordering::Release);
                        if out.send(Ok(Arc::new(chunk))).is_err() {
                            // relaxed-ok: advisory stop flag — readers need eventual visibility only
                            stop.store(true, Ordering::Relaxed);
                            return Ok(());
                        }
                    } else {
                        self.feed_raw_chunk(
                            meta,
                            &text_tx,
                            &out,
                            &events,
                            &counters,
                            &stop,
                            &in_pipeline,
                            params,
                        )?;
                    }
                }
            }
        }

        // Before touching the device, let pending writes (e.g. the previous
        // query's safeguard flush) finish — §4: "only the reading of new
        // chunks from disk has to be delayed until flushing the cache".
        if (!plan.from_db.is_empty() || !plan.raw.is_empty() || plan.streaming)
            && writer.pending() > 0
        {
            writer.barrier();
        }

        // Phase 2: chunks already loaded in the database — binary reads.
        for meta in &plan.from_db {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let _span = self.obs.trace.enter_current(
                "read.chunk",
                vec![
                    ("chunk", meta.id.0.to_string()),
                    ("source", "db".to_string()),
                ],
            );
            let t0 = clock.now();
            let loaded = self.retry_load_from_db(meta, &params.convert_cols);
            let t1 = clock.now();
            self.profiler.record(Stage::Read, t1 - t0, t0, t1);
            let chunk = match loaded {
                Ok(c) => c,
                Err(_) => {
                    // The database copy is unreadable even after retries
                    // (permanent fault or persistent corruption): answer
                    // from the raw file instead — a loading failure must
                    // never fail the query.
                    self.note_db_fallback(meta.id);
                    self.feed_raw_chunk(
                        meta,
                        &text_tx,
                        &out,
                        &events,
                        &counters,
                        &stop,
                        &in_pipeline,
                        params,
                    )?;
                    continue;
                }
            };
            counters.from_db.fetch_add(1, Ordering::Release);
            let arc = Arc::new(chunk);
            if out.send(Ok(arc.clone())).is_err() {
                // relaxed-ok: advisory stop flag — readers need eventual visibility only
                stop.store(true, Ordering::Relaxed);
                return Ok(());
            }
            // Database chunks enter the cache with every present column
            // marked loaded (biased toward early eviction).
            let present = arc.present_columns();
            if let Some(ev) = self.cache.insert(arc, &present) {
                let _ = events.send(Event::Evicted(ev));
            }
        }

        // Phase 2.5: hybrid chunks — loaded columns from the database, the
        // missing ones converted from the raw file and merged (§3.2.1).
        let needed: Vec<usize> = params.convert_cols.clone();
        for meta in &plan.hybrid {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let _span = self.obs.trace.enter_current(
                "read.chunk",
                vec![
                    ("chunk", meta.id.0.to_string()),
                    ("source", "hybrid".to_string()),
                ],
            );
            let t0 = clock.now();
            let loaded = self.db.loaded_columns(&self.table, meta.id, &needed)?;
            let base = self.io_retry(&format!("db/{}", self.table), || {
                self.db.load_chunk(&self.table, meta.id, &loaded)
            });
            let text = self.io_retry(&self.raw_file, || {
                read_chunk_at(self.db.disk(), &self.raw_file, meta)
            })?;
            let t1 = clock.now();
            self.profiler.record(Stage::Read, t1 - t0, t0, t1);
            counters.hybrid.fetch_add(1, Ordering::Release);
            self.obs.metrics.counter("scanraw.cols.hybrid_chunks").inc();
            let job = match base {
                Ok(base) => {
                    let missing: Vec<usize> = needed
                        .iter()
                        .copied()
                        .filter(|c| !loaded.contains(c))
                        .collect();
                    let cols_mapped = missing.last().map(|&c| c + 1).unwrap_or(1);
                    RawJob {
                        text,
                        base: Some(Arc::new(base)),
                        convert_cols: Some(Arc::new(missing)),
                        cols_mapped: Some(cols_mapped),
                    }
                }
                Err(_) => {
                    // The loaded columns are unreadable: convert the whole
                    // chunk from the raw text just read.
                    self.note_db_fallback(meta.id);
                    RawJob::plain(text)
                }
            };
            if !self.dispatch_raw_job(
                job,
                &text_tx,
                &out,
                &events,
                &counters,
                &stop,
                &in_pipeline,
                params,
                false,
            )? {
                return Ok(());
            }
        }

        // Phase 3: raw-file chunks.
        if plan.streaming {
            let mut reader = ChunkReader::new(
                self.db.disk().clone(),
                self.raw_file.clone(),
                self.config.chunk_rows,
            )?;
            let mut complete = true;
            loop {
                // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
                if stop.load(Ordering::Relaxed) {
                    complete = false;
                    break;
                }
                // Streaming discovers the chunk id only after the read, so
                // the span opens with the source tag alone and is attributed
                // to its chunk below. (The final iteration reads to discover
                // EOF, leaving one untagged probe span per cold scan.)
                let span = self
                    .obs
                    .trace
                    .enter_current("read.chunk", vec![("source", "raw".to_string())]);
                let t0 = clock.now();
                // Retry-safe: a failed read does not advance the reader's
                // fetch position, so the re-issued read covers the same span.
                let chunk = self.io_retry(&self.raw_file, || reader.next_chunk())?;
                let t1 = clock.now();
                let Some(chunk) = chunk else { break };
                if let Some(span) = &span {
                    self.obs
                        .trace
                        .add_tag(span.ctx().span, "chunk", chunk.id.0.to_string());
                }
                self.profiler.record(Stage::Read, t1 - t0, t0, t1);
                self.db.catalog().observe_chunk(
                    &self.table,
                    ChunkMeta {
                        id: chunk.id,
                        file_offset: chunk.file_offset,
                        byte_len: chunk.len_bytes() as u64,
                        first_row: chunk.first_row,
                        rows: chunk.rows,
                    },
                )?;
                if !self.dispatch_raw_job(
                    RawJob::plain(chunk),
                    &text_tx,
                    &out,
                    &events,
                    &counters,
                    &stop,
                    &in_pipeline,
                    params,
                    true,
                )? {
                    complete = false;
                    break;
                }
            }
            if complete {
                self.db.catalog().mark_layout_complete(&self.table)?;
                self.layout_known.store(true, Ordering::Release);
            }
        } else {
            for meta in &plan.raw {
                // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                self.feed_raw_chunk(
                    meta,
                    &text_tx,
                    &out,
                    &events,
                    &counters,
                    &stop,
                    &in_pipeline,
                    params,
                )?;
            }
        }
        Ok(())
    }

    /// Reads one raw chunk (by metadata) and dispatches it for conversion.
    #[allow(clippy::too_many_arguments)]
    fn feed_raw_chunk(
        self: &Arc<Self>,
        meta: &ChunkMeta,
        text_tx: &Sender<RawJob>,
        out: &Sender<Result<Arc<BinaryChunk>>>,
        events: &Sender<Event>,
        counters: &Arc<ScanCounters>,
        stop: &Arc<AtomicBool>,
        in_pipeline: &Arc<AtomicUsize>,
        params: &Arc<ScanParams>,
    ) -> Result<()> {
        let clock = self.db.disk().clock().clone();
        let _span = self.obs.trace.enter_current(
            "read.chunk",
            vec![
                ("chunk", meta.id.0.to_string()),
                ("source", "raw".to_string()),
            ],
        );
        let chunk = {
            let t0 = clock.now();
            let c = self.io_retry(&self.raw_file, || {
                read_chunk_at(self.db.disk(), &self.raw_file, meta)
            })?;
            let t1 = clock.now();
            self.profiler.record(Stage::Read, t1 - t0, t0, t1);
            c
        };
        self.dispatch_raw_job(
            RawJob::plain(chunk),
            text_tx,
            out,
            events,
            counters,
            stop,
            in_pipeline,
            params,
            true,
        )?;
        Ok(())
    }

    /// Hands a raw-chunk job to the conversion pipeline (or converts it
    /// inline when the pool is empty). Returns false when the scan is
    /// shutting down.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_raw_job(
        self: &Arc<Self>,
        job: RawJob,
        text_tx: &Sender<RawJob>,
        out: &Sender<Result<Arc<BinaryChunk>>>,
        events: &Sender<Event>,
        counters: &Arc<ScanCounters>,
        stop: &Arc<AtomicBool>,
        in_pipeline: &Arc<AtomicUsize>,
        params: &Arc<ScanParams>,
        count_raw: bool,
    ) -> Result<bool> {
        if count_raw {
            counters.from_raw.fetch_add(1, Ordering::Release);
        }
        if params.workers == 0 {
            // Sequential regime: the chunk passes through the conversion
            // stages one at a time in the READ thread (paper §5.1,
            // "zero worker threads correspond to sequential execution").
            let converted = self.convert_job(&job, params);
            return match converted {
                Ok((bin, filtered)) => Ok(self.deliver(Arc::new(bin), filtered, out, events, stop)),
                Err(e) => {
                    let _ = out.send(Err(e));
                    Ok(true)
                }
            };
        }
        in_pipeline.fetch_add(1, Ordering::AcqRel);
        let mut pending = job;
        loop {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                in_pipeline.fetch_sub(1, Ordering::AcqRel);
                return Ok(false);
            }
            match text_tx.send_timeout(pending, Duration::from_millis(1)) {
                Ok(()) => return Ok(true),
                Err(crossbeam::channel::SendTimeoutError::Timeout(c)) => {
                    pending = c;
                    // The text chunks buffer is full: READ is blocked, the
                    // disk is idle — the speculative-loading window (§4).
                    // Journaled here (not in the scheduler) because only the
                    // READ side knows which chunk is waiting.
                    self.obs.event(ObsEvent::ReadBlocked {
                        chunk: pending.text.id.0 as u64,
                    });
                    let _ = events.send(Event::ReadBlocked);
                }
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => {
                    in_pipeline.fetch_sub(1, Ordering::AcqRel);
                    return Ok(false);
                }
            }
        }
    }

    /// [`ScanRaw::load_from_db`] under the configured device-retry budget.
    fn retry_load_from_db(&self, meta: &ChunkMeta, cols: &[usize]) -> Result<BinaryChunk> {
        self.io_retry(&format!("db/{}", self.table), || {
            self.load_from_db(meta, cols)
        })
    }

    fn load_from_db(&self, meta: &ChunkMeta, cols: &[usize]) -> Result<BinaryChunk> {
        // Load the catalog-backed columns; at minimum the needed ones are
        // there (planning checked), and loading everything available keeps
        // the cache useful for wider future queries.
        let available = self.db.loaded_columns(
            &self.table,
            meta.id,
            &(0..self.schema.len()).collect::<Vec<_>>(),
        )?;
        let cols: Vec<usize> = if available.is_empty() {
            cols.to_vec()
        } else {
            available
        };
        self.db.load_chunk(&self.table, meta.id, &cols)
    }

    // ----------------------------------------------------------------------
    // Conversion (TOKENIZE + PARSE + MAP) and delivery
    // ----------------------------------------------------------------------

    /// Runs TOKENIZE (with optional map caching) for one chunk.
    fn tokenize(&self, chunk: &TextChunk, cols_mapped: usize) -> Result<PositionalMap> {
        if let Some(cache) = &self.map_cache {
            if let Some(map) = cache.lock().get(&chunk.id) {
                // A cached map with at least the needed prefix is reusable;
                // PARSE scans forward beyond the prefix either way.
                if map.cols_mapped() as usize >= cols_mapped {
                    return Ok(map.clone());
                }
            }
        }
        // CPU stages are timed in wall-clock (the device clock may be
        // virtual, under which CPU work is instantaneous); span endpoints
        // stay on the device clock for utilization timelines.
        let _span = self.obs.trace.enter_current(
            "tokenize.chunk",
            vec![
                ("chunk", chunk.id.0.to_string()),
                ("worker", worker_label()),
            ],
        );
        let clock = self.db.disk().clock().clone();
        let t0 = clock.now();
        // effect-ok: CPU-time stat for the profiler side channel, never in scan output
        let w0 = std::time::Instant::now();
        let map = tokenize_chunk_selective(chunk, self.dialect, self.schema.len(), cols_mapped)?;
        let elapsed = w0.elapsed();
        let t1 = clock.now();
        self.profiler.record(Stage::Tokenize, elapsed, t0, t1);
        if let Some(cache) = &self.map_cache {
            cache.lock().insert(chunk.id, map.clone());
        }
        Ok(map)
    }

    /// Runs PARSE(+MAP) for one tokenized raw job, honoring push-down
    /// selection and hybrid column merging. Returns the chunk and whether it
    /// was row-filtered.
    fn parse_job(
        &self,
        job: &RawJob,
        map: &PositionalMap,
        params: &ScanParams,
    ) -> Result<(BinaryChunk, bool)> {
        let chunk = &job.text;
        let convert_cols: &[usize] = match &job.convert_cols {
            Some(c) => c,
            None => &params.convert_cols,
        };
        let _span = self.obs.trace.enter_current(
            "parse.chunk",
            vec![
                ("chunk", chunk.id.0.to_string()),
                ("worker", worker_label()),
            ],
        );
        let clock = self.db.disk().clock().clone();
        let t0 = clock.now();
        // effect-ok: CPU-time stat for the profiler side channel, never in scan output
        let w0 = std::time::Instant::now();
        let (mut bin, filtered) = match &params.pushdown {
            Some(pd) => {
                let filter = RowFilter {
                    columns: &pd.columns,
                    predicate: &*pd.predicate,
                };
                (
                    parse_chunk_filtered(
                        chunk,
                        map,
                        self.dialect,
                        &self.schema,
                        convert_cols,
                        &filter,
                    )?,
                    true,
                )
            }
            None => (
                parse_chunk_projected(chunk, map, self.dialect, &self.schema, convert_cols)?,
                false,
            ),
        };
        // Hybrid merge: graft the database-loaded columns onto the freshly
        // converted ones (row counts must agree — both sides are the same
        // chunk; push-down is rejected for hybrid jobs at plan time).
        if let Some(base) = &job.base {
            if filtered {
                return Err(Error::query(
                    "push-down selection cannot merge with database columns",
                ));
            }
            if base.rows != bin.rows {
                return Err(Error::storage(format!(
                    "hybrid merge row mismatch in {}: db {} vs raw {}",
                    bin.id, base.rows, bin.rows
                )));
            }
            for (i, col) in base.columns.iter().enumerate() {
                if bin.columns[i].is_none() {
                    bin.columns[i] = col.clone();
                }
            }
        }
        let elapsed = w0.elapsed();
        let t1 = clock.now();
        self.profiler.record(Stage::Parse, elapsed, t0, t1);
        if !filtered {
            // Statistics from a filtered subset would under-approximate the
            // chunk's true bounds and corrupt chunk skipping — skip them.
            self.record_statistics(&bin)?;
        }
        Ok((bin, filtered))
    }

    /// Full conversion of one raw job (sequential regime).
    fn convert_job(&self, job: &RawJob, params: &ScanParams) -> Result<(BinaryChunk, bool)> {
        let cols_mapped = job.cols_mapped.unwrap_or(params.cols_mapped);
        let map = self.tokenize(&job.text, cols_mapped)?;
        self.parse_job(job, &map, params)
    }

    /// Records conversion-time statistics into the catalog (§3.3).
    fn record_statistics(&self, bin: &BinaryChunk) -> Result<()> {
        if !self.config.collect_statistics {
            return Ok(());
        }
        if self.config.advanced_statistics {
            self.db.catalog().record_stats_detailed(&self.table, bin)
        } else {
            self.db.catalog().record_stats(&self.table, bin)
        }
    }

    /// Sends a converted chunk to the engine; unless it was row-filtered by
    /// push-down selection, also caches it and raises the scheduler events
    /// (filtered chunks must never be cached or loaded — §2 WRITE).
    /// Returns false when the consumer is gone.
    fn deliver(
        &self,
        bin: Arc<BinaryChunk>,
        filtered: bool,
        out: &Sender<Result<Arc<BinaryChunk>>>,
        events: &Sender<Event>,
        stop: &Arc<AtomicBool>,
    ) -> bool {
        if out.send(Ok(bin.clone())).is_err() {
            // relaxed-ok: advisory stop flag — readers need eventual visibility only
            stop.store(true, Ordering::Relaxed);
            return false;
        }
        if filtered {
            return true;
        }
        let present = bin.present_columns();
        let loaded = self
            .db
            .loaded_columns(&self.table, bin.id, &present)
            .unwrap_or_default();
        let evicted = self.cache.insert(bin.clone(), &loaded);
        let _ = events.send(Event::Converted(bin));
        if let Some(ev) = evicted {
            let _ = events.send(Event::Evicted(ev));
        }
        true
    }

    // ----------------------------------------------------------------------
    // Worker loop (dynamic TOKENIZE / PARSE / EXEC assignment)
    // ----------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        self: &Arc<Self>,
        w: usize,
        text_rx: Receiver<RawJob>,
        pos_rx: Receiver<TokenizedChunk>,
        pos_tx: Sender<TokenizedChunk>,
        out: Sender<Result<Arc<BinaryChunk>>>,
        events: Sender<Event>,
        exec_rx: Receiver<ExecTask>,
        _counters: Arc<ScanCounters>,
        stop: Arc<AtomicBool>,
        in_pipeline: Arc<AtomicUsize>,
        params: &Arc<ScanParams>,
    ) {
        // Pin the scan span: tokenize/parse spans (and the retry/disk spans
        // they trigger) attach under it. Engine EXEC tasks carry their own
        // explicit context and override this for their duration.
        let _ambient = params.trace.map(trace::set_current);
        // Per-worker stage histograms: wall time the worker spent in each
        // stage *including* hand-off back-pressure, so pool imbalance is
        // visible even when the pure per-chunk compute times are uniform.
        let hists = WorkerHists {
            tokenize: self
                .obs
                .metrics
                .duration_histogram(&format!("pipeline.worker.{w}.tokenize.nanos")),
            parse: self
                .obs
                .metrics
                .duration_histogram(&format!("pipeline.worker.{w}.parse.nanos")),
            exec: self
                .obs
                .metrics
                .duration_histogram(&format!("pipeline.worker.{w}.exec.nanos")),
        };
        // Phase 1 — conversion: dynamic TOKENIZE/PARSE assignment, with
        // consumer EXEC tasks served first so chunk-parallel queries overlap
        // aggregation with conversion of later chunks.
        loop {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                return;
            }
            // Prefer EXEC (downstream-most), then PARSE, then TOKENIZE —
            // the draining heuristic that guarantees progress (§3.2.1)
            // extended one stage downstream.
            match exec_rx.try_recv() {
                Ok(task) => {
                    self.run_exec(task, &hists.exec);
                    continue;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
            }
            match pos_rx.try_recv() {
                Ok(job) => {
                    // effect-ok: CPU-time stat for the stage histograms, never in scan output
                    let t = std::time::Instant::now();
                    self.do_parse(job, &out, &events, &stop, &in_pipeline, params);
                    hists.parse.observe_duration(t.elapsed());
                    continue;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
            }
            match text_rx.try_recv() {
                Ok(job) => {
                    // effect-ok: CPU-time stat for the stage histograms, never in scan output
                    let t = std::time::Instant::now();
                    self.do_tokenize(job, &pos_tx, &out, &stop, &in_pipeline, params);
                    hists.tokenize.observe_duration(t.elapsed());
                    continue;
                }
                Err(TryRecvError::Empty) => {
                    // Nothing ready: block briefly on the position buffer
                    // (the only conversion channel guaranteed to stay
                    // connected).
                    match pos_rx.recv_timeout(Duration::from_micros(200)) {
                        Ok(job) => {
                            // effect-ok: CPU-time stat for the stage histograms, never in scan output
                            let t = std::time::Instant::now();
                            self.do_parse(job, &out, &events, &stop, &in_pipeline, params);
                            hists.parse.observe_duration(t.elapsed());
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    // READ is done; drain the position buffer until the
                    // pipeline is empty.
                    match pos_rx.recv_timeout(Duration::from_micros(200)) {
                        Ok(job) => {
                            // effect-ok: CPU-time stat for the stage histograms, never in scan output
                            let t = std::time::Instant::now();
                            self.do_parse(job, &out, &events, &stop, &in_pipeline, params);
                            hists.parse.observe_duration(t.elapsed());
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if in_pipeline.load(Ordering::Acquire) == 0 {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        }
        // Phase 2 — conversion is complete. Drop the conversion-side senders
        // first: the engine's chunk loop ends exactly when every worker has
        // released its `out` clone, so parking here must not hold it. Then
        // keep serving EXEC tasks until every submitter (engine handles and
        // the stream's own sender) is gone.
        drop(pos_tx);
        drop(pos_rx);
        drop(text_rx);
        drop(out);
        drop(events);
        loop {
            // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match exec_rx.recv_timeout(Duration::from_micros(200)) {
                Ok(task) => self.run_exec(task, &hists.exec),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Runs one consumer-execution task, recording EXEC stage time (the
    /// device clock may be virtual, so compute is timed in wall-clock).
    fn run_exec(&self, task: ExecTask, hist: &Histogram) {
        let clock = self.db.disk().clock().clone();
        let t0 = clock.now();
        // effect-ok: CPU-time stat for the profiler side channel, never in scan output
        let w0 = std::time::Instant::now();
        task();
        let elapsed = w0.elapsed();
        let t1 = clock.now();
        self.profiler.record(Stage::Exec, elapsed, t0, t1);
        hist.observe_duration(elapsed);
    }

    fn do_tokenize(
        &self,
        raw: RawJob,
        pos_tx: &Sender<TokenizedChunk>,
        out: &Sender<Result<Arc<BinaryChunk>>>,
        stop: &Arc<AtomicBool>,
        in_pipeline: &Arc<AtomicUsize>,
        params: &ScanParams,
    ) {
        let cols_mapped = raw.cols_mapped.unwrap_or(params.cols_mapped);
        let map = self.tokenize(&raw.text, cols_mapped);
        match map {
            Ok(map) => {
                let mut job = TokenizedChunk { job: raw, map };
                loop {
                    // relaxed-ok: advisory stop flag — a stale read only delays shutdown by one iteration
                    if stop.load(Ordering::Relaxed) {
                        in_pipeline.fetch_sub(1, Ordering::AcqRel);
                        return;
                    }
                    match pos_tx.send_timeout(job, Duration::from_millis(1)) {
                        Ok(()) => return,
                        Err(crossbeam::channel::SendTimeoutError::Timeout(j)) => job = j,
                        Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => {
                            in_pipeline.fetch_sub(1, Ordering::AcqRel);
                            return;
                        }
                    }
                }
            }
            Err(e) => {
                let _ = out.send(Err(e));
                in_pipeline.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn do_parse(
        &self,
        job: TokenizedChunk,
        out: &Sender<Result<Arc<BinaryChunk>>>,
        events: &Sender<Event>,
        stop: &Arc<AtomicBool>,
        in_pipeline: &Arc<AtomicUsize>,
        params: &ScanParams,
    ) {
        match self.parse_job(&job.job, &job.map, params) {
            Ok((bin, filtered)) => {
                self.deliver(Arc::new(bin), filtered, out, events, stop);
            }
            Err(e) => {
                let _ = out.send(Err(e));
            }
        }
        in_pipeline.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Chunk-source plan for one scan.
struct ScanPlan {
    cached: Vec<ChunkMeta>,
    from_db: Vec<ChunkMeta>,
    /// Chunks with some (not all) needed columns loaded: db + raw merge.
    hybrid: Vec<ChunkMeta>,
    raw: Vec<ChunkMeta>,
    /// True on the first scan: stream sequentially, layout unknown.
    streaming: bool,
    skipped: usize,
}
