//! The scheduler thread and the persistent WRITE thread.
//!
//! The scheduler receives control messages (paper Figure 3) from READ, the
//! conversion workers, and WRITE, and decides *when to load* according to the
//! configured [`WritePolicy`]:
//!
//! * **ExternalTables** — never writes;
//! * **Eager** — every converted chunk is stored (parallel ETL);
//! * **Buffered** — chunks are stored when evicted from the full binary
//!   cache;
//! * **Invisible** — the first `chunks_per_query` converted chunks of every
//!   query are stored, regardless of resource availability;
//! * **Speculative** — a chunk is stored only while READ is blocked (the
//!   disk is idle because the pipeline is CPU-bound), one chunk at a time,
//!   picking the *oldest unloaded* cached chunk; plus the end-of-scan
//!   *safeguard* that flushes the cache once the last raw chunk has been
//!   read (paper §4).
//!
//! The WRITE thread is persistent — it belongs to the operator, not to a
//! query — so a safeguard flush can overlap the tail of one query and the
//! beginning of the next. READ delays its first device access of a new scan
//! behind a write barrier, which is exactly the "only the reading of new
//! chunks from disk has to be delayed until flushing the cache" rule of §4.

use crate::cache::{ChunkCache, Evicted};
use crate::profile::{Profiler, Stage};
use crate::retry::{with_retry, RetryPolicy, DEGRADED_COUNTER};
use crossbeam::channel::{unbounded, Receiver, Sender};
use scanraw_obs::{EventJournal, Obs, ObsEvent, SpanCtx, WriteCause};
use scanraw_storage::Database;
use scanraw_types::{BinaryChunk, ChunkId, WritePolicy};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Control messages flowing into the scheduler (paper Figure 3).
#[derive(Debug)]
pub enum Event {
    /// A worker finished converting a chunk (it is cached and delivered).
    Converted(Arc<BinaryChunk>),
    /// The cache evicted a chunk to make room.
    Evicted(Evicted),
    /// READ found the text-chunks buffer full — the disk is idle.
    ReadBlocked,
    /// READ delivered the last raw chunk of this scan.
    RawScanComplete,
    /// WRITE finished storing a chunk.
    WriteDone(ChunkId),
    /// The engine consumed the whole scan; the scheduler should wind down.
    QueryDone,
}

/// Commands for the WRITE thread.
pub(crate) enum WriteCmd {
    /// Store the named (chunk, column) cells; notify `events` when done.
    /// Columns absent from the chunk or already stored are skipped.
    Store {
        chunk: Arc<BinaryChunk>,
        /// Column cells to persist — the unit of column-granular loading.
        cols: Vec<usize>,
        notify: Option<Sender<Event>>,
        /// Span context of the scan that queued the store; the WRITE thread
        /// records the store as a `write.chunk` child span under it.
        trace: Option<SpanCtx>,
    },
    /// Reply on the channel once all previously queued stores completed.
    Barrier(Sender<()>),
    Shutdown,
}

/// Per-operator tracker of which columns the observed query history touches.
///
/// Every scan records its effective projection here; the speculative
/// scheduler then prioritizes (chunk, column) cells of *hot* columns —
/// columns some query actually read — and never spends idle device time on
/// cells no workload has asked for (workload-driven vertical partitioning).
/// Deterministic: ordering is by observation count descending, column index
/// ascending.
#[derive(Debug, Default)]
pub struct ColumnHeat {
    counts: parking_lot::Mutex<Vec<u64>>,
}

impl ColumnHeat {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query touching `cols` (the scan's effective projection).
    pub fn observe(&self, cols: &[usize]) {
        let mut counts = self.counts.lock();
        for &c in cols {
            if counts.len() <= c {
                counts.resize(c + 1, 0);
            }
            counts[c] += 1;
        }
    }

    /// Observation count of one column (0 when never observed).
    pub fn heat(&self, col: usize) -> u64 {
        self.counts.lock().get(col).copied().unwrap_or(0)
    }

    /// Columns observed at least once, hottest first (count descending,
    /// index ascending on ties).
    pub fn hot_columns(&self) -> Vec<usize> {
        let counts = self.counts.lock();
        let mut hot: Vec<(usize, u64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(c, &n)| (c, n))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.into_iter().map(|(c, _)| c).collect()
    }

    /// Columns observed at least once, index ascending — the *registered*
    /// column set that defines column-granular full-loadedness.
    pub fn observed_columns(&self) -> Vec<usize> {
        let counts = self.counts.lock();
        counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(c, _)| c)
            .collect()
    }
}

/// The cells of `missing` worth storing: with query history, the missing
/// columns that are hot (hottest first); without any history, everything
/// missing (the paper's chunk-granular behaviour).
fn wanted_cols(missing: &[usize], hot: &[usize]) -> Vec<usize> {
    if hot.is_empty() {
        return missing.to_vec();
    }
    hot.iter()
        .copied()
        .filter(|c| missing.contains(c))
        .collect()
}

/// Handle to the persistent WRITE thread.
pub(crate) struct Writer {
    tx: Sender<WriteCmd>,
    handle: Option<JoinHandle<()>>,
    /// Stores queued or in progress.
    pending: Arc<AtomicU64>,
    /// Chunks successfully stored over the writer's lifetime.
    written: Arc<AtomicU64>,
    /// Sticky: set when a permanent device fault made loading impossible.
    degraded: Arc<AtomicBool>,
}

impl Writer {
    /// Spawns the WRITE thread for `table` over `db`, marking cache entries
    /// loaded as stores complete.
    ///
    /// Transient device faults are retried under `retry`; a permanent fault
    /// flips the sticky degraded flag, after which the scheduler stops
    /// queueing stores entirely (external-table mode) — queries keep
    /// answering from the raw file.
    ///
    /// # Errors
    ///
    /// Fails only if the OS refuses to spawn the thread.
    pub(crate) fn spawn(
        db: Database,
        table: String,
        cache: ChunkCache,
        profiler: Profiler,
        obs: Obs,
        retry: RetryPolicy,
    ) -> scanraw_types::Result<Self> {
        let (tx, rx): (Sender<WriteCmd>, Receiver<WriteCmd>) = unbounded();
        let pending = Arc::new(AtomicU64::new(0));
        let written = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicBool::new(false));
        let handle = {
            let pending = pending.clone();
            let written = written.clone();
            let degraded = degraded.clone();
            let clock = db.disk().clock().clone();
            let db_target = format!("db/{table}");
            std::thread::Builder::new()
                .name(format!("scanraw-write-{table}"))
                .spawn(move || {
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            WriteCmd::Store {
                                chunk,
                                cols,
                                notify,
                                trace,
                            } => {
                                // The span covers the store including retries,
                                // so IO retry spans nest under `write.chunk`.
                                let _span = trace.map(|ctx| {
                                    obs.trace.enter(
                                        ctx,
                                        "write.chunk",
                                        vec![("chunk", chunk.id.0.to_string())],
                                    )
                                });
                                let t0 = clock.now();
                                // A failed store is fatal for loading but must
                                // not kill the pipeline: the cells simply stay
                                // unloaded and will be converted again next scan.
                                // Retries are safe — already-committed cells
                                // are skipped by the store's idempotence guard.
                                let res = with_retry(&retry, &clock, &obs, &db_target, || {
                                    db.store_chunk_cols(&table, &chunk, &cols).map(|_| ())
                                });
                                let t1 = clock.now();
                                profiler.record(Stage::Write, t1 - t0, t0, t1);
                                match res {
                                    Ok(()) => {
                                        // Every requested present cell is now
                                        // durable (stored just now or by an
                                        // earlier store): flip the cache bits
                                        // and journal the confirmed cells.
                                        let stored: Vec<usize> = cols
                                            .iter()
                                            .copied()
                                            .filter(|&c| {
                                                chunk.columns.get(c).is_some_and(Option::is_some)
                                            })
                                            .collect();
                                        cache.mark_loaded(chunk.id, &stored);
                                        for &c in &stored {
                                            obs.event(ObsEvent::ColumnCellLoaded {
                                                chunk: chunk.id.0 as u64,
                                                column: c as u64,
                                            });
                                        }
                                        obs.metrics
                                            .counter("scanraw.cols.loaded_cells")
                                            .add(stored.len() as u64);
                                        // relaxed-ok: monotonic lifetime statistic; readers don't order on it
                                        written.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(e) if !e.is_retryable() => {
                                        // Permanent fault: loading can no
                                        // longer make progress. Degrade once
                                        // to external-table mode.
                                        if !degraded.swap(true, Ordering::AcqRel) {
                                            obs.event(ObsEvent::LoadDegraded {
                                                chunk: chunk.id.0 as u64,
                                            });
                                            obs.metrics.counter(DEGRADED_COUNTER).inc();
                                        }
                                    }
                                    Err(_) => {
                                        // Retry budget exhausted on a transient
                                        // fault: the chunk stays unloaded and
                                        // will be converted again next scan.
                                    }
                                }
                                pending.fetch_sub(1, Ordering::Release);
                                if let Some(n) = notify {
                                    let _ = n.send(Event::WriteDone(chunk.id));
                                }
                            }
                            WriteCmd::Barrier(ack) => {
                                let _ = ack.send(());
                            }
                            WriteCmd::Shutdown => break,
                        }
                    }
                })
                .map_err(|e| scanraw_types::Error::Pipeline(format!("spawn WRITE: {e}")))?
        };
        Ok(Writer {
            tx,
            handle: Some(handle),
            pending,
            written,
            degraded,
        })
    }

    /// Queues a store of the named (chunk, column) cells. Returns false when
    /// the WRITE thread is gone (operator teardown raced the scheduler); the
    /// cells then simply stay unloaded.
    pub(crate) fn store(
        &self,
        chunk: Arc<BinaryChunk>,
        cols: Vec<usize>,
        notify: Option<Sender<Event>>,
        trace: Option<SpanCtx>,
    ) -> bool {
        self.pending.fetch_add(1, Ordering::Acquire);
        if self
            .tx
            .send(WriteCmd::Store {
                chunk,
                cols,
                notify,
                trace,
            })
            .is_err()
        {
            self.pending.fetch_sub(1, Ordering::Release);
            return false;
        }
        true
    }

    /// Blocks until every store queued before this call has completed. A
    /// dead WRITE thread means nothing is pending; returns immediately.
    pub(crate) fn barrier(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(WriteCmd::Barrier(ack_tx)).is_err() {
            return;
        }
        let _ = ack_rx.recv();
    }

    /// Stores queued or running right now.
    pub(crate) fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// Chunks stored over the writer's lifetime.
    pub(crate) fn written(&self) -> u64 {
        // relaxed-ok: monotonic lifetime statistic; readers don't order on it
        self.written.load(Ordering::Relaxed)
    }

    /// True once a permanent device fault degraded loading; sticky for the
    /// writer's (= operator's) lifetime.
    pub(crate) fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        let _ = self.tx.send(WriteCmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-scan scheduler outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerReport {
    /// Stores this scan queued to WRITE.
    pub writes_queued: u64,
    /// Stores triggered by the speculative READ-blocked rule.
    pub speculative_writes: u64,
    /// Stores triggered by the end-of-scan safeguard.
    pub safeguard_writes: u64,
    /// Stores triggered by cache eviction (buffered policy).
    pub eviction_writes: u64,
}

impl SchedulerReport {
    /// Reconstructs a report from the journal entries with `seq >= since`.
    ///
    /// The scheduler emits one journal event per store decision
    /// ([`ObsEvent::SpeculativeWriteTriggered`], [`ObsEvent::SafeguardFlush`]
    /// batches, [`ObsEvent::WriteQueued`] for the eager/invisible/eviction
    /// causes), so the per-scan report is fully derivable from the journal —
    /// this is what makes the journal, not the return value, the source of
    /// truth for tools like `explain_analyze`.
    pub fn from_journal(journal: &EventJournal, since: u64) -> SchedulerReport {
        let mut report = SchedulerReport::default();
        for entry in journal.entries() {
            if entry.seq < since {
                continue;
            }
            match entry.event {
                ObsEvent::SpeculativeWriteTriggered { .. } => {
                    report.writes_queued += 1;
                    report.speculative_writes += 1;
                }
                ObsEvent::SafeguardFlush { chunks } => {
                    report.writes_queued += chunks;
                    report.safeguard_writes += chunks;
                }
                ObsEvent::WriteQueued { cause, .. } => {
                    report.writes_queued += 1;
                    if cause == WriteCause::Eviction {
                        report.eviction_writes += 1;
                    }
                }
                // The report is a write-decision summary; every other event
                // is listed so a new journal event forces a decision on
                // whether it belongs in the report (L007).
                // ColumnCellLoaded records store *completions*, not
                // decisions — the WriteQueued/Speculative/Safeguard events
                // already counted the corresponding command.
                ObsEvent::QueryStart { .. }
                | ObsEvent::QueryEnd { .. }
                | ObsEvent::ReadBlocked { .. }
                | ObsEvent::ColumnCellLoaded { .. }
                | ObsEvent::CacheHit { .. }
                | ObsEvent::CacheMiss { .. }
                | ObsEvent::CacheEvict { .. }
                | ObsEvent::ChunkSkipped { .. }
                | ObsEvent::WorkerScaled { .. }
                | ObsEvent::IoRetry { .. }
                | ObsEvent::LoadDegraded { .. }
                | ObsEvent::DbReadFallback { .. }
                | ObsEvent::RecoveryCompleted { .. }
                | ObsEvent::TraceStarted { .. }
                | ObsEvent::TraceCompleted { .. }
                | ObsEvent::QueryAdmitted { .. }
                | ObsEvent::QueryRejected { .. }
                | ObsEvent::BatchFormed { .. }
                | ObsEvent::QueryServed { .. } => {}
            }
        }
        report
    }
}

/// Runs the per-scan scheduling policy over the event stream.
///
/// Returns when [`Event::QueryDone`] arrives (sent by the chunk stream once
/// the engine consumed everything and the pipeline threads joined).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scheduler(
    policy: WritePolicy,
    events_rx: Receiver<Event>,
    events_tx: Sender<Event>,
    cache: ChunkCache,
    writer: &Writer,
    db: &Database,
    table: &str,
    heat: &ColumnHeat,
    obs: &Obs,
    scan_span: Option<SpanCtx>,
) -> SchedulerReport {
    let mut report = SchedulerReport::default();
    // Cells already handed to WRITE this scan (idempotence guard).
    let mut queued: std::collections::HashSet<(ChunkId, usize)> = std::collections::HashSet::new();
    // Speculative loading writes one store command at a time (§4).
    let mut write_in_flight = false;
    let mut invisible_quota = match policy {
        WritePolicy::Invisible { chunks_per_query } => chunks_per_query as u64,
        _ => 0,
    };
    let mut raw_scan_done = false;

    let already_loaded = |id: ChunkId, chunk: &BinaryChunk| -> bool {
        db.loaded_columns(table, id, &chunk.present_columns())
            .map(|l| l.len() == chunk.present_columns().len())
            .unwrap_or(false)
    };

    while let Ok(ev) = events_rx.recv() {
        match ev {
            // In degraded (external-table) mode no stores are queued at all:
            // a permanent device fault means every further attempt would fail
            // the same way.
            Event::Converted(chunk) if !writer.degraded() => match policy {
                WritePolicy::Eager
                    if !already_loaded(chunk.id, &chunk)
                        && writer.store(
                            chunk.clone(),
                            chunk.present_columns(),
                            Some(events_tx.clone()),
                            scan_span,
                        ) =>
                {
                    obs.event(ObsEvent::WriteQueued {
                        chunk: chunk.id.0 as u64,
                        cause: WriteCause::Eager,
                    });
                    report.writes_queued += 1;
                }
                WritePolicy::Invisible { .. }
                    if invisible_quota > 0
                        && !already_loaded(chunk.id, &chunk)
                        && writer.store(
                            chunk.clone(),
                            chunk.present_columns(),
                            Some(events_tx.clone()),
                            scan_span,
                        ) =>
                {
                    invisible_quota -= 1;
                    obs.event(ObsEvent::WriteQueued {
                        chunk: chunk.id.0 as u64,
                        cause: WriteCause::Invisible,
                    });
                    report.writes_queued += 1;
                }
                _ => {}
            },
            Event::Converted(_) => {}
            Event::Evicted(ev) => {
                if policy == WritePolicy::Buffered
                    && !ev.loaded
                    && !writer.degraded()
                    && writer.store(
                        ev.chunk.clone(),
                        ev.missing_cols.clone(),
                        Some(events_tx.clone()),
                        scan_span,
                    )
                {
                    obs.event(ObsEvent::WriteQueued {
                        chunk: ev.id.0 as u64,
                        cause: WriteCause::Eviction,
                    });
                    report.writes_queued += 1;
                    report.eviction_writes += 1;
                }
            }
            Event::ReadBlocked => {
                if matches!(policy, WritePolicy::Speculative { .. })
                    && !write_in_flight
                    && !writer.degraded()
                {
                    // Oldest cached chunk with missing *wanted* cells not yet
                    // handed to WRITE during this scan. Wanted = hot columns
                    // of the observed query history; without history, every
                    // missing cell (the paper's chunk-granular behaviour).
                    let hot = heat.hot_columns();
                    let next = cache
                        .unloaded_cells()
                        .into_iter()
                        .find_map(|(chunk, missing)| {
                            let want: Vec<usize> = wanted_cols(&missing, &hot)
                                .into_iter()
                                .filter(|&c| !queued.contains(&(chunk.id, c)))
                                .collect();
                            (!want.is_empty()).then_some((chunk, want))
                        });
                    if let Some((chunk, want)) = next {
                        let id = chunk.id;
                        if writer.store(chunk, want.clone(), Some(events_tx.clone()), scan_span) {
                            queued.extend(want.into_iter().map(|c| (id, c)));
                            write_in_flight = true;
                            obs.event(ObsEvent::SpeculativeWriteTriggered { chunk: id.0 as u64 });
                            report.writes_queued += 1;
                            report.speculative_writes += 1;
                        }
                    }
                }
            }
            Event::WriteDone(_) => {
                write_in_flight = false;
            }
            Event::RawScanComplete => {
                raw_scan_done = true;
                if matches!(policy, WritePolicy::Speculative { safeguard: true })
                    && !writer.degraded()
                {
                    // Flush the cache's unloaded wanted cells, oldest chunk
                    // first; this overlaps the remainder of query processing
                    // (§4).
                    let flushed =
                        flush_unloaded(&cache, writer, heat, &mut queued, &mut report, scan_span);
                    if flushed > 0 {
                        obs.event(ObsEvent::SafeguardFlush { chunks: flushed });
                    }
                }
            }
            Event::QueryDone => {
                // Chunks that were still mid-pipeline when the raw scan
                // completed missed the first safeguard pass; flush them now
                // so every query is guaranteed to make loading progress.
                // The writes overlap the next query (the barrier only delays
                // its first device read).
                if let WritePolicy::Speculative { safeguard: true } = policy {
                    if raw_scan_done && !writer.degraded() {
                        let flushed = flush_unloaded(
                            &cache,
                            writer,
                            heat,
                            &mut queued,
                            &mut report,
                            scan_span,
                        );
                        if flushed > 0 {
                            obs.event(ObsEvent::SafeguardFlush { chunks: flushed });
                        }
                    }
                }
                break;
            }
        }
    }
    report
}

/// Queues a store for every cached chunk with missing wanted cells not yet
/// handed to WRITE, oldest first. Returns the number of store commands
/// queued (chunks, matching [`ObsEvent::SafeguardFlush`]'s unit).
fn flush_unloaded(
    cache: &ChunkCache,
    writer: &Writer,
    heat: &ColumnHeat,
    queued: &mut std::collections::HashSet<(ChunkId, usize)>,
    report: &mut SchedulerReport,
    scan_span: Option<SpanCtx>,
) -> u64 {
    let hot = heat.hot_columns();
    let mut flushed = 0;
    for (chunk, missing) in cache.unloaded_cells() {
        let id = chunk.id;
        let want: Vec<usize> = wanted_cols(&missing, &hot)
            .into_iter()
            .filter(|&c| !queued.contains(&(id, c)))
            .collect();
        if !want.is_empty() && writer.store(chunk, want.clone(), None, scan_span) {
            queued.extend(want.into_iter().map(|c| (id, c)));
            report.writes_queued += 1;
            report.safeguard_writes += 1;
            flushed += 1;
        }
    }
    flushed
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_simio::SimDisk;
    use scanraw_types::{ColumnData, Schema};

    fn setup() -> (Database, ChunkCache, Writer) {
        setup_full(Obs::new(), 2)
    }

    fn setup_full(obs: Obs, budget: u32) -> (Database, ChunkCache, Writer) {
        setup_cols(obs, budget, 1)
    }

    fn setup_cols(obs: Obs, budget: u32, n_cols: usize) -> (Database, ChunkCache, Writer) {
        let db = Database::new(SimDisk::instant());
        db.create_table("t", Schema::uniform_ints(n_cols), "t.csv")
            .unwrap();
        let cache = ChunkCache::new(8);
        let writer = Writer::spawn(
            db.clone(),
            "t".to_string(),
            cache.clone(),
            Profiler::new(),
            obs,
            RetryPolicy {
                budget,
                backoff: std::time::Duration::from_micros(100),
            },
        )
        .expect("spawn writer");
        (db, cache, writer)
    }

    fn chunk(id: u32) -> Arc<BinaryChunk> {
        Arc::new(BinaryChunk {
            id: ChunkId(id),
            first_row: 0,
            rows: 2,
            columns: vec![Some(ColumnData::Int64(vec![id as i64, 2]))],
        })
    }

    #[test]
    fn writer_stores_and_marks_cache() {
        let (db, cache, writer) = setup();
        cache.insert(chunk(0), &[]);
        assert!(writer.store(chunk(0), vec![0], None, None));
        writer.barrier();
        assert_eq!(writer.written(), 1);
        assert_eq!(writer.pending(), 0);
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_ok());
        assert!(cache.unloaded_cells().is_empty(), "cache marked loaded");
    }

    #[test]
    fn writer_journals_loaded_cells() {
        let obs = Obs::new();
        let (db, cache, writer) = setup_full(obs.clone(), 2);
        cache.insert(chunk(0), &[]);
        assert!(writer.store(chunk(0), vec![0], None, None));
        writer.barrier();
        assert_eq!(
            obs.journal.count_where(|e| matches!(
                e,
                ObsEvent::ColumnCellLoaded {
                    chunk: 0,
                    column: 0
                }
            )),
            1
        );
        assert_eq!(
            obs.metrics.counter_value("scanraw.cols.loaded_cells"),
            Some(1)
        );
        let _ = db;
    }

    #[test]
    fn barrier_orders_after_stores() {
        let (_db, _cache, writer) = setup();
        for i in 0..16 {
            assert!(writer.store(chunk(i), vec![0], None, None));
        }
        writer.barrier();
        assert_eq!(writer.pending(), 0);
        assert_eq!(writer.written(), 16);
    }

    #[test]
    fn column_heat_orders_hottest_first() {
        let heat = ColumnHeat::new();
        assert!(heat.hot_columns().is_empty());
        heat.observe(&[0, 3]);
        heat.observe(&[3]);
        heat.observe(&[5]);
        assert_eq!(heat.heat(3), 2);
        assert_eq!(heat.heat(1), 0);
        assert_eq!(heat.hot_columns(), vec![3, 0, 5], "count desc, index asc");
        assert_eq!(heat.observed_columns(), vec![0, 3, 5]);
        // Without history everything missing is wanted; with history only
        // the hot subset, hottest first.
        assert_eq!(wanted_cols(&[1, 3, 5], &[]), vec![1, 3, 5]);
        assert_eq!(wanted_cols(&[1, 3, 5], &heat.hot_columns()), vec![3, 5]);
    }

    fn run_policy_heat(
        policy: WritePolicy,
        events: Vec<Event>,
        heat: &ColumnHeat,
    ) -> (Database, SchedulerReport, Obs) {
        let (db, cache, writer) = setup();
        let (tx, rx) = unbounded();
        for ev in events {
            // Pre-stage converted chunks into the cache like the pipeline does.
            if let Event::Converted(c) = &ev {
                cache.insert(c.clone(), &[]);
            }
            tx.send(ev).unwrap();
        }
        tx.send(Event::QueryDone).unwrap();
        let obs = Obs::new();
        let report = run_scheduler(
            policy,
            rx,
            tx.clone(),
            cache,
            &writer,
            &db,
            "t",
            heat,
            &obs,
            None,
        );
        writer.barrier();
        (db, report, obs)
    }

    fn run_policy_obs(policy: WritePolicy, events: Vec<Event>) -> (Database, SchedulerReport, Obs) {
        run_policy_heat(policy, events, &ColumnHeat::new())
    }

    fn run_policy(policy: WritePolicy, events: Vec<Event>) -> (Database, SchedulerReport) {
        let (db, report, obs) = run_policy_obs(policy, events);
        // Every policy path must journal its decisions faithfully: the
        // report reconstructed from the journal always matches the one the
        // scheduler returned.
        assert_eq!(
            SchedulerReport::from_journal(&obs.journal, 0),
            report,
            "journal-derived report diverged"
        );
        (db, report)
    }

    #[test]
    fn external_tables_never_writes() {
        let (db, report) = run_policy(
            WritePolicy::ExternalTables,
            vec![
                Event::Converted(chunk(0)),
                Event::ReadBlocked,
                Event::RawScanComplete,
            ],
        );
        assert_eq!(report.writes_queued, 0);
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_err());
    }

    #[test]
    fn eager_writes_every_chunk() {
        let (db, report) = run_policy(
            WritePolicy::Eager,
            vec![Event::Converted(chunk(0)), Event::Converted(chunk(1))],
        );
        assert_eq!(report.writes_queued, 2);
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_ok());
        assert!(db.load_chunk("t", ChunkId(1), &[0]).is_ok());
    }

    #[test]
    fn invisible_respects_quota() {
        let (db, report) = run_policy(
            WritePolicy::Invisible {
                chunks_per_query: 2,
            },
            vec![
                Event::Converted(chunk(0)),
                Event::Converted(chunk(1)),
                Event::Converted(chunk(2)),
            ],
        );
        assert_eq!(report.writes_queued, 2);
        assert!(db.load_chunk("t", ChunkId(2), &[0]).is_err());
    }

    #[test]
    fn buffered_writes_only_evictions() {
        let ev = Evicted {
            id: ChunkId(3),
            chunk: chunk(3),
            loaded: false,
            missing_cols: vec![0],
        };
        let (db, report) = run_policy(
            WritePolicy::Buffered,
            vec![Event::Converted(chunk(0)), Event::Evicted(ev)],
        );
        assert_eq!(report.writes_queued, 1);
        assert_eq!(report.eviction_writes, 1);
        assert!(db.load_chunk("t", ChunkId(3), &[0]).is_ok());
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_err());
    }

    #[test]
    fn buffered_skips_already_loaded_evictions() {
        let ev = Evicted {
            id: ChunkId(3),
            chunk: chunk(3),
            loaded: true,
            missing_cols: Vec::new(),
        };
        let (_db, report) = run_policy(WritePolicy::Buffered, vec![Event::Evicted(ev)]);
        assert_eq!(report.writes_queued, 0);
    }

    #[test]
    fn speculative_writes_oldest_on_read_blocked() {
        let (db, report) = run_policy(
            WritePolicy::speculative(),
            vec![
                Event::Converted(chunk(4)),
                Event::Converted(chunk(5)),
                Event::ReadBlocked,
            ],
        );
        assert!(report.speculative_writes >= 1);
        assert!(db.load_chunk("t", ChunkId(4), &[0]).is_ok(), "oldest first");
    }

    #[test]
    fn speculative_one_at_a_time_until_write_done() {
        let (db, report) = run_policy(
            WritePolicy::speculative(),
            vec![
                Event::Converted(chunk(0)),
                Event::Converted(chunk(1)),
                Event::ReadBlocked,
                Event::ReadBlocked, // in-flight → must not trigger another
                Event::WriteDone(ChunkId(0)),
                Event::ReadBlocked, // now it may
            ],
        );
        // The WriteDone is injected manually here; the real WRITE thread also
        // sends its own completions into the same channel, so depending on
        // interleaving 2 or 3 stores can be triggered — never just 1.
        assert!(
            (2..=3).contains(&report.speculative_writes),
            "got {}",
            report.speculative_writes
        );
        let _ = db;
    }

    #[test]
    fn speculative_stores_only_hot_columns() {
        // A two-column table whose query history only ever touched column 1:
        // both the speculative pick and the safeguard must persist column 1's
        // cells and leave column 0 cold.
        let (db, cache, writer) = setup_cols(Obs::new(), 2, 2);
        let wide = |id: u32| {
            Arc::new(BinaryChunk {
                id: ChunkId(id),
                first_row: 0,
                rows: 2,
                columns: vec![
                    Some(ColumnData::Int64(vec![id as i64, 2])),
                    Some(ColumnData::Int64(vec![10, 11])),
                ],
            })
        };
        let heat = ColumnHeat::new();
        heat.observe(&[1]);
        let (tx, rx) = unbounded();
        for id in 0..2 {
            cache.insert(wide(id), &[]);
            tx.send(Event::Converted(wide(id))).unwrap();
        }
        tx.send(Event::ReadBlocked).unwrap();
        tx.send(Event::RawScanComplete).unwrap();
        tx.send(Event::QueryDone).unwrap();
        let obs = Obs::new();
        let report = run_scheduler(
            WritePolicy::speculative(),
            rx,
            tx.clone(),
            cache,
            &writer,
            &db,
            "t",
            &heat,
            &obs,
            None,
        );
        writer.barrier();
        assert!(report.writes_queued >= 2);
        for id in 0..2u32 {
            assert_eq!(
                db.loaded_columns("t", ChunkId(id), &[0, 1]).unwrap(),
                vec![1],
                "only the hot column cell of chunk {id} may be stored"
            );
        }
    }

    #[test]
    fn safeguard_flushes_cache_at_scan_end() {
        let (db, report) = run_policy(
            WritePolicy::speculative(),
            vec![
                Event::Converted(chunk(0)),
                Event::Converted(chunk(1)),
                Event::RawScanComplete,
            ],
        );
        assert_eq!(report.safeguard_writes, 2);
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_ok());
        assert!(db.load_chunk("t", ChunkId(1), &[0]).is_ok());
    }

    #[test]
    fn journal_report_respects_since_seq() {
        let (_db, report, obs) = run_policy_obs(
            WritePolicy::speculative(),
            vec![
                Event::Converted(chunk(0)),
                Event::Converted(chunk(1)),
                Event::RawScanComplete,
            ],
        );
        assert_eq!(report.safeguard_writes, 2);
        let full = SchedulerReport::from_journal(&obs.journal, 0);
        assert_eq!(full, report);
        // A `since` past the last entry sees an empty scan.
        let next_seq = obs.journal.total_recorded();
        let empty = SchedulerReport::from_journal(&obs.journal, next_seq);
        assert_eq!(empty, SchedulerReport::default());
    }

    #[test]
    fn safeguard_disabled_leaves_cache_unflushed() {
        let (db, report) = run_policy(
            WritePolicy::Speculative { safeguard: false },
            vec![Event::Converted(chunk(0)), Event::RawScanComplete],
        );
        assert_eq!(report.safeguard_writes, 0);
        assert!(db.load_chunk("t", ChunkId(0), &[0]).is_err());
    }

    #[cfg(feature = "fault-inject")]
    mod faults {
        use super::*;
        use crate::retry::DEGRADED_COUNTER;
        use scanraw_simio::{FaultConfig, FaultPlan};

        #[test]
        fn transient_store_faults_are_retried_to_success() {
            // With max_consecutive = 1 and certain transient faults, the
            // worst case is fail / ok+fail / fail / ok+ok — 3 retries.
            let (db, cache, writer) = setup_full(Obs::new(), 4);
            db.disk().set_fault_plan(FaultPlan::new(FaultConfig {
                target: "db/".into(),
                p_transient: 1.0,
                max_consecutive: 1,
                ..FaultConfig::seeded(3)
            }));
            cache.insert(chunk(0), &[]);
            assert!(writer.store(chunk(0), vec![0], None, None));
            writer.barrier();
            assert!(!writer.degraded());
            assert_eq!(writer.written(), 1);
            db.disk().clear_fault_plan();
            assert!(db.load_chunk("t", ChunkId(0), &[0]).is_ok());
        }

        #[test]
        fn permanent_store_fault_degrades_and_stops_queueing() {
            let obs = Obs::new();
            let (db, cache, writer) = setup_full(obs.clone(), 2);
            db.disk().set_fault_plan(FaultPlan::new(FaultConfig {
                target: "db/".into(),
                permanent_after: Some(0),
                ..FaultConfig::seeded(7)
            }));
            cache.insert(chunk(0), &[]);
            assert!(writer.store(chunk(0), vec![0], None, None));
            writer.barrier();
            assert!(writer.degraded(), "permanent fault must degrade loading");
            assert_eq!(writer.written(), 0);
            assert!(
                !cache.unloaded_cells().is_empty(),
                "failed cell must not be marked loaded"
            );
            assert!(obs
                .journal
                .entries()
                .iter()
                .any(|e| matches!(e.event, ObsEvent::LoadDegraded { .. })));
            assert_eq!(obs.metrics.counter_value(DEGRADED_COUNTER), Some(1));

            // External-table mode: every policy path stops queueing stores.
            let (tx, rx) = unbounded();
            cache.insert(chunk(1), &[]);
            tx.send(Event::Converted(chunk(1))).unwrap();
            tx.send(Event::ReadBlocked).unwrap();
            tx.send(Event::RawScanComplete).unwrap();
            tx.send(Event::QueryDone).unwrap();
            let report = run_scheduler(
                WritePolicy::speculative(),
                rx,
                tx.clone(),
                cache,
                &writer,
                &db,
                "t",
                &ColumnHeat::new(),
                &obs,
                None,
            );
            assert_eq!(report.writes_queued, 0, "degraded mode queues nothing");
        }
    }
}
