//! End-to-end tests of the ScanRaw pipeline across write policies, worker
//! counts, and query sequences.

use scanraw::{ConvertScope, ScanRaw, ScanRequest};
use scanraw_rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{RangePredicate, ScanRawConfig, Schema, Value, WritePolicy};
use std::sync::Arc;

const ROWS: u64 = 4000;
const COLS: usize = 4;
const CHUNK_ROWS: u32 = 500; // → 8 chunks

fn setup(config: ScanRawConfig) -> (Arc<ScanRaw>, CsvSpec) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(ROWS, COLS, 42);
    stage_csv(&disk, "data.csv", &spec);
    let db = Database::new(disk);
    let op = ScanRaw::create(
        db,
        "t",
        Schema::uniform_ints(COLS),
        TextDialect::CSV,
        "data.csv",
        config,
    )
    .unwrap();
    (op, spec)
}

fn base_config(policy: WritePolicy, workers: usize) -> ScanRawConfig {
    ScanRawConfig::default()
        .with_chunk_rows(CHUNK_ROWS)
        .with_workers(workers)
        .with_policy(policy)
}

/// Sums every projected column over a full scan and checks row counts.
fn scan_and_sum(op: &Arc<ScanRaw>, req: ScanRequest) -> (Vec<i64>, u64, scanraw::ScanSummary) {
    let cols = {
        let mut c = req.projection.clone();
        c.sort_unstable();
        c.dedup();
        c
    };
    let mut stream = op.scan(req).unwrap();
    let mut sums = vec![0i64; cols.len()];
    let mut rows = 0u64;
    while let Some(chunk) = stream.next_chunk() {
        rows += chunk.rows as u64;
        for (i, &c) in cols.iter().enumerate() {
            let col = chunk
                .column(c)
                .unwrap_or_else(|| panic!("column {c} missing from {:?}", chunk.id));
            match col {
                scanraw_types::ColumnData::Int64(v) => sums[i] += v.iter().sum::<i64>(),
                other => panic!("unexpected column type {other:?}"),
            }
        }
    }
    let summary = stream.finish().unwrap();
    (sums, rows, summary)
}

#[test]
fn external_tables_correct_across_worker_counts() {
    for workers in [0, 1, 2, 4] {
        let (op, spec) = setup(base_config(WritePolicy::ExternalTables, workers));
        let (sums, rows, summary) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
        assert_eq!(rows, ROWS, "workers={workers}");
        assert_eq!(sums, expected_column_sums(&spec), "workers={workers}");
        assert_eq!(summary.from_raw, 8);
        assert_eq!(summary.writes_queued, 0);
        assert_eq!(op.chunks_written(), 0);
    }
}

#[test]
fn repeat_scans_stay_correct_and_use_cache() {
    let (op, spec) = setup(base_config(WritePolicy::ExternalTables, 2));
    let expected = expected_column_sums(&spec);
    let (s1, _, sum1) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(s1, expected);
    assert_eq!(sum1.from_cache, 0);
    assert!(op.layout_known());
    let (s2, r2, sum2) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(s2, expected);
    assert_eq!(r2, ROWS);
    // Default cache (32 chunks) holds the whole 8-chunk file.
    assert_eq!(sum2.from_cache, 8);
    assert_eq!(sum2.from_raw, 0);
}

#[test]
fn eager_loading_loads_everything_in_one_query() {
    let (op, spec) = setup(base_config(WritePolicy::Eager, 2));
    let (sums, _, summary) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(sums, expected_column_sums(&spec));
    assert_eq!(summary.writes_queued, 8);
    assert_eq!(op.chunks_written(), 8);
    assert!(op.fully_loaded());
}

#[test]
fn second_scan_after_eager_reads_from_db_not_raw() {
    let mut cfg = base_config(WritePolicy::Eager, 2);
    cfg.binary_cache_chunks = 2; // tiny cache → most chunks must come from db
    let (op, spec) = setup(cfg);
    scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert!(op.fully_loaded());
    let (sums, rows, summary) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(sums, expected_column_sums(&spec));
    assert_eq!(rows, ROWS);
    assert_eq!(summary.from_raw, 0, "{summary:?}");
    assert!(summary.from_db >= 6, "{summary:?}");
}

#[test]
fn speculative_safeguard_flushes_cache_each_query() {
    let mut cfg = base_config(WritePolicy::speculative(), 2);
    cfg.binary_cache_chunks = 2; // cache is 1/4 of the 8-chunk file
    let (op, spec) = setup(cfg);
    let expected = expected_column_sums(&spec);

    // Query 1: everything raw; safeguard flushes the (2-chunk) cache.
    let (s, _, sum1) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(s, expected);
    assert_eq!(sum1.from_raw, 8);
    assert!(sum1.safeguard_writes >= 1, "{sum1:?}");
    op.drain_writes();
    let written_after_q1 = op.chunks_written();
    assert!(written_after_q1 >= 2, "safeguard stored the cached chunks");

    // Subsequent queries: loaded chunks come from cache/db, more get stored
    // each time until the file is fully loaded.
    let mut prev = written_after_q1;
    for q in 2..=6 {
        let (s, rows, sum) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
        assert_eq!(s, expected, "query {q}");
        assert_eq!(rows, ROWS);
        assert!(
            sum.from_cache + sum.from_db + sum.from_raw == 8,
            "query {q}: {sum:?}"
        );
        op.drain_writes();
        let now = op.chunks_written();
        if !op.fully_loaded() {
            assert!(now > prev, "query {q} must make loading progress");
        }
        prev = now;
    }
    assert!(op.fully_loaded(), "file fully loaded after enough queries");
}

#[test]
fn speculative_without_safeguard_may_not_converge_but_stays_correct() {
    let mut cfg = base_config(WritePolicy::Speculative { safeguard: false }, 2);
    cfg.binary_cache_chunks = 2;
    let (op, spec) = setup(cfg);
    let expected = expected_column_sums(&spec);
    for _ in 0..3 {
        let (s, rows, _) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
        assert_eq!(s, expected);
        assert_eq!(rows, ROWS);
    }
}

#[test]
fn buffered_loading_writes_evicted_chunks() {
    let mut cfg = base_config(WritePolicy::Buffered, 2);
    cfg.binary_cache_chunks = 3; // 8 chunks through a 3-chunk cache → evictions
    let (op, spec) = setup(cfg);
    let (s, _, summary) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(s, expected_column_sums(&spec));
    assert!(summary.eviction_writes >= 5, "{summary:?}");
    assert!(op.chunks_written() >= 5);
    assert!(!op.fully_loaded(), "chunks still in cache are not stored");
}

#[test]
fn invisible_loading_fixed_quota_per_query() {
    let mut cfg = base_config(
        WritePolicy::Invisible {
            chunks_per_query: 3,
        },
        2,
    );
    cfg.binary_cache_chunks = 2; // keep cache small so raw conversions repeat
    let (op, spec) = setup(cfg);
    let expected = expected_column_sums(&spec);

    let (s, _, sum1) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(s, expected);
    assert_eq!(sum1.writes_queued, 3);
    op.drain_writes();
    assert_eq!(op.chunks_written(), 3);

    let (_, _, sum2) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert!(sum2.writes_queued <= 3);
    op.drain_writes();
    assert!(op.chunks_written() <= 6);
}

#[test]
fn projection_only_converts_requested_columns() {
    let (op, spec) = setup(base_config(WritePolicy::ExternalTables, 2));
    let req = ScanRequest::projected(vec![1, 3]);
    let mut stream = op.scan(req).unwrap();
    let mut sums = [0i64; 2];
    while let Some(chunk) = stream.next_chunk() {
        assert!(chunk.column(0).is_none(), "unprojected column materialized");
        assert!(chunk.column(2).is_none());
        for (i, c) in [1usize, 3].iter().enumerate() {
            match chunk.column(*c).unwrap() {
                scanraw_types::ColumnData::Int64(v) => sums[i] += v.iter().sum::<i64>(),
                _ => panic!(),
            }
        }
    }
    stream.finish().unwrap();
    let expected = expected_column_sums(&spec);
    assert_eq!(sums[0], expected[1]);
    assert_eq!(sums[1], expected[3]);
}

#[test]
fn chunk_skipping_via_statistics() {
    let disk = SimDisk::instant();
    // Build a file whose column 0 is ordered by chunk: chunk i holds values
    // around i*1000, so min/max statistics separate chunks cleanly.
    let mut text = String::new();
    for chunk in 0..4 {
        for r in 0..100 {
            text.push_str(&format!("{},{}\n", chunk * 1000 + r, r));
        }
    }
    disk.storage().put("ordered.csv", text.into_bytes());
    let db = Database::new(disk);
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(100)
        .with_workers(2)
        .with_policy(WritePolicy::ExternalTables);
    let op = ScanRaw::create(
        db,
        "ordered",
        Schema::uniform_ints(2),
        TextDialect::CSV,
        "ordered.csv",
        cfg,
    )
    .unwrap();

    // First scan converts everything and gathers statistics.
    let (_, rows, _) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1]));
    assert_eq!(rows, 400);

    // Second scan restricted to chunk 2's value range must skip 3 chunks.
    let req = ScanRequest::all_columns(vec![0, 1]).with_skip_predicate(RangePredicate::between(
        0,
        Value::Int(2000),
        Value::Int(2099),
    ));
    let (_, rows, summary) = scan_and_sum(&op, req);
    assert_eq!(summary.skipped, 3, "{summary:?}");
    assert_eq!(rows, 100);
}

#[test]
fn scan_rejects_bad_requests() {
    let (op, _) = setup(base_config(WritePolicy::ExternalTables, 1));
    assert!(op
        .scan(ScanRequest::all_columns(Vec::<usize>::new()))
        .is_err());
    assert!(op.scan(ScanRequest::all_columns(vec![COLS])).is_err());
}

#[test]
fn malformed_file_surfaces_parse_error() {
    let disk = SimDisk::instant();
    disk.storage()
        .put("bad.csv", b"1,2\n3,notanumber\n5,6\n".to_vec());
    let db = Database::new(disk);
    let op = ScanRaw::create(
        db,
        "bad",
        Schema::uniform_ints(2),
        TextDialect::CSV,
        "bad.csv",
        ScanRawConfig::default().with_chunk_rows(10).with_workers(2),
    )
    .unwrap();
    let stream = op.scan(ScanRequest::all_columns(vec![0, 1])).unwrap();
    let err = stream.finish().unwrap_err();
    assert!(matches!(err, scanraw_types::Error::Parse { .. }), "{err}");
}

#[test]
fn dropping_stream_mid_scan_does_not_hang() {
    let (op, _) = setup(base_config(WritePolicy::speculative(), 2));
    let mut stream = op.scan(ScanRequest::all_columns(vec![0, 1, 2, 3])).unwrap();
    let _ = stream.next_chunk();
    drop(stream); // must join all pipeline threads without deadlock
                  // The operator remains usable afterwards.
    let (sums, rows, _) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 1, 2, 3]));
    assert_eq!(rows, ROWS);
    assert_eq!(sums.len(), 4);
}

#[test]
fn mixed_projections_across_queries() {
    let (op, spec) = setup(base_config(WritePolicy::speculative(), 2));
    let expected = expected_column_sums(&spec);
    let (s, _, _) = scan_and_sum(&op, ScanRequest::all_columns(vec![2]));
    assert_eq!(s[0], expected[2]);
    op.drain_writes();
    let (s, _, _) = scan_and_sum(&op, ScanRequest::all_columns(vec![0, 3]));
    assert_eq!(s, vec![expected[0], expected[3]]);
}

#[test]
fn convert_scope_all_columns_enables_wider_reuse() {
    // Query 1 projects col 0 but converts all columns; query 2 needs col 1
    // and can be served entirely from cache.
    let (op, _) = setup(base_config(WritePolicy::ExternalTables, 2));
    let req = ScanRequest {
        projection: vec![0],
        convert: ConvertScope::AllColumns,
        skip_predicate: None,
        cols_mapped: None,
        pushdown: None,
        trace: None,
    };
    let (_, _, _) = scan_and_sum(&op, req);
    let (_, _, summary) = scan_and_sum(&op, ScanRequest::all_columns(vec![1]));
    assert_eq!(summary.from_cache, 8, "{summary:?}");
    assert_eq!(summary.from_raw, 0);
}

#[test]
fn registry_reuses_and_reaps_operators() {
    use scanraw::OperatorRegistry;
    let disk = SimDisk::instant();
    stage_csv(&disk, "r.csv", &CsvSpec::new(100, 2, 1));
    let db = Database::new(disk);
    let reg = OperatorRegistry::new();
    let make = {
        let db = db.clone();
        move || {
            ScanRaw::create(
                db.clone(),
                "r",
                Schema::uniform_ints(2),
                TextDialect::CSV,
                "r.csv",
                ScanRawConfig::default()
                    .with_chunk_rows(10)
                    .with_workers(1)
                    .with_policy(WritePolicy::Eager),
            )
        }
    };
    let op1 = reg.get_or_create("r.csv", make.clone()).unwrap();
    let op2 = reg.get_or_create("r.csv", make).unwrap();
    assert!(Arc::ptr_eq(&op1, &op2), "same operator across queries");
    assert_eq!(reg.len(), 1);
    assert_eq!(reg.reap_fully_loaded(), 0);

    let (_, rows, _) = scan_and_sum(&op1, ScanRequest::all_columns(vec![0, 1]));
    assert_eq!(rows, 100);
    assert!(op1.fully_loaded());
    assert_eq!(reg.reap_fully_loaded(), 1);
    assert!(reg.is_empty());
}

/// Pins the column-granular reap contract: an operator is fully loaded —
/// and reaped — once every cell of every *registered* (query-observed)
/// column is durable, even when columns nobody asked for were never stored.
/// A never-scanned operator registers no columns and is never reaped.
#[test]
fn reap_tracks_registered_columns_at_cell_granularity() {
    use scanraw::OperatorRegistry;
    let (op, _) = setup(base_config(WritePolicy::Eager, 2));
    let reg = OperatorRegistry::new();
    reg.get_or_create("data.csv", || Ok(op.clone())).unwrap();

    // No scan has run: no registered columns, nothing to reap.
    assert!(!op.fully_loaded());
    assert_eq!(reg.reap_fully_loaded(), 0);

    // One projected query over columns {1, 3}: Eager stores exactly the
    // converted cells, so only those columns become durable.
    let (_, rows, _) = scan_and_sum(&op, ScanRequest::projected(vec![1, 3]));
    assert_eq!(rows, ROWS);
    op.drain_writes();
    for id in 0..8u32 {
        assert_eq!(
            op.database()
                .loaded_columns("t", scanraw_types::ChunkId(id), &[0, 1, 2, 3])
                .unwrap(),
            vec![1, 3],
            "chunk {id}: exactly the projected cells are loaded"
        );
    }

    // All registered columns ({1, 3}) are fully durable: the operator has
    // morphed into a heap scan for its observed workload and is reaped,
    // although columns 0 and 2 were never stored.
    assert!(op.fully_loaded());
    assert!(!op.database().fully_loaded("t").unwrap());
    assert_eq!(reg.reap_fully_loaded(), 1);
    assert!(reg.is_empty());
}
