//! Hybrid database+raw column reads (paper §3.2.1): for chunks with only
//! some of the required columns loaded, the loaded columns are read from the
//! database and only the missing ones are converted from the raw file.

use scanraw::{ConvertScope, ScanRaw, ScanRequest};
use scanraw_rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};
use std::sync::Arc;

const COLS: usize = 4;

/// Builds an operator whose database holds only column 0 of every chunk
/// (projection-only eager load), with an empty cache.
fn partially_loaded(hybrid: bool) -> (Arc<ScanRaw>, CsvSpec) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(2000, COLS, 12);
    stage_csv(&disk, "p.csv", &spec);
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(2)
        .with_cache_chunks(1)
        .with_policy(WritePolicy::Eager)
        .with_hybrid_reads(hybrid);
    let op = ScanRaw::create(
        Database::new(disk),
        "p",
        Schema::uniform_ints(COLS),
        TextDialect::CSV,
        "p.csv",
        cfg,
    )
    .unwrap();
    // Projection-only scan of column 0 under eager loading: every chunk gets
    // exactly column 0 stored.
    let req = ScanRequest {
        projection: vec![0],
        convert: ConvertScope::ProjectionOnly,
        skip_predicate: None,
        cols_mapped: None,
        pushdown: None,
        trace: None,
    };
    op.scan(req).unwrap().finish().unwrap();
    op.drain_writes();
    op.cache().clear();
    (op, spec)
}

fn sums(op: &Arc<ScanRaw>, req: ScanRequest) -> (Vec<i64>, scanraw::ScanSummary) {
    let cols = req.projection.clone();
    let mut stream = op.scan(req).unwrap();
    let mut out = vec![0i64; cols.len()];
    while let Some(chunk) = stream.next_chunk() {
        for (i, &c) in cols.iter().enumerate() {
            if let scanraw_types::ColumnData::Int64(v) = chunk.column(c).unwrap() {
                out[i] += v.iter().sum::<i64>();
            }
        }
    }
    (out, stream.finish().unwrap())
}

#[test]
fn hybrid_merges_database_and_raw_columns() {
    let (op, spec) = partially_loaded(true);
    let expected = expected_column_sums(&spec);
    let req = ScanRequest::projected(vec![0, 2]);
    let (s, summary) = sums(&op, req);
    assert_eq!(s, vec![expected[0], expected[2]]);
    assert_eq!(summary.from_hybrid, 8, "{summary:?}");
    assert_eq!(summary.from_raw, 0, "no full raw conversions needed");
}

#[test]
fn without_hybrid_partial_chunks_go_back_to_raw() {
    let (op, spec) = partially_loaded(false);
    let expected = expected_column_sums(&spec);
    let req = ScanRequest::projected(vec![0, 2]);
    let (s, summary) = sums(&op, req);
    assert_eq!(s, vec![expected[0], expected[2]]);
    assert_eq!(summary.from_hybrid, 0);
    assert_eq!(summary.from_raw, 8);
}

#[test]
fn hybrid_results_are_loadable_and_complete_the_columns() {
    // After a hybrid scan under eager loading, the freshly converted column
    // is stored too — the table's loaded set grows column by column.
    let (op, _) = partially_loaded(true);
    let req = ScanRequest::projected(vec![0, 2]);
    sums(&op, req);
    op.drain_writes();
    let entry = op.database().catalog().table("p").unwrap();
    let entry = entry.read();
    for i in 0..entry.n_chunks() {
        let id = scanraw_types::ChunkId(i as u32);
        assert!(entry.is_loaded(id, &[0, 2]), "chunk {i} incomplete");
    }
    // A follow-up query over {0, 2} is served from the database alone.
    op.cache().clear();
    let (_, summary) = sums(&op, ScanRequest::projected(vec![0, 2]));
    assert_eq!(summary.from_db, 8, "{summary:?}");
}

#[test]
fn hybrid_sequential_mode_works_too() {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(500, COLS, 3);
    stage_csv(&disk, "s.csv", &spec);
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(100)
        .with_workers(0) // sequential regime
        .with_cache_chunks(1)
        .with_policy(WritePolicy::Eager)
        .with_hybrid_reads(true);
    let op = ScanRaw::create(
        Database::new(disk),
        "s",
        Schema::uniform_ints(COLS),
        TextDialect::CSV,
        "s.csv",
        cfg,
    )
    .unwrap();
    let req = ScanRequest {
        projection: vec![1],
        convert: ConvertScope::ProjectionOnly,
        skip_predicate: None,
        cols_mapped: None,
        pushdown: None,
        trace: None,
    };
    op.scan(req).unwrap().finish().unwrap();
    op.drain_writes();
    op.cache().clear();
    let expected = expected_column_sums(&spec);
    let (s, summary) = sums(&op, ScanRequest::projected(vec![1, 3]));
    assert_eq!(s, vec![expected[1], expected[3]]);
    assert_eq!(summary.from_hybrid, 5, "{summary:?}");
}

#[test]
fn pushdown_rejected_when_hybrid_enabled() {
    let (op, _) = partially_loaded(true);
    let req = ScanRequest::projected(vec![0, 2]).with_pushdown(scanraw::PushdownFilter {
        columns: vec![0],
        predicate: Arc::new(|_| true),
    });
    assert!(op.scan(req).is_err());
}
