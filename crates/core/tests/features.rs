//! Tests of the optional operator features: positional-map caching,
//! resource advice, and profiler-driven introspection.

use scanraw::profile::Stage;
use scanraw::{ResourceAdvice, ScanRaw, ScanRequest};
use scanraw_rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::{DiskConfig, SimDisk, VirtualClock};
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};
use std::sync::Arc;
use std::time::Duration;

fn operator(config: ScanRawConfig, disk: SimDisk) -> (Arc<ScanRaw>, CsvSpec) {
    let spec = CsvSpec::new(2000, 4, 8);
    stage_csv(&disk, "f.csv", &spec);
    let op = ScanRaw::create(
        Database::new(disk),
        "f",
        Schema::uniform_ints(4),
        TextDialect::CSV,
        "f.csv",
        config,
    )
    .unwrap();
    (op, spec)
}

fn full_scan(op: &Arc<ScanRaw>) -> Vec<i64> {
    let mut stream = op.scan(ScanRequest::all_columns(vec![0, 1, 2, 3])).unwrap();
    let mut sums = vec![0i64; 4];
    while let Some(chunk) = stream.next_chunk() {
        for (i, s) in sums.iter_mut().enumerate() {
            if let scanraw_types::ColumnData::Int64(v) = chunk.column(i).unwrap() {
                *s += v.iter().sum::<i64>();
            }
        }
    }
    stream.finish().unwrap();
    sums
}

#[test]
fn positional_map_cache_skips_repeat_tokenizing() {
    // Tiny binary cache forces repeat scans back to the raw file; the map
    // cache then removes TOKENIZE work entirely.
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(2)
        .with_cache_chunks(1)
        .with_policy(WritePolicy::ExternalTables)
        .with_positional_map_cache(true);
    let (op, spec) = operator(cfg, SimDisk::instant());
    let expected = expected_column_sums(&spec);

    assert_eq!(full_scan(&op), expected);
    let tokenized_first = op.profiler().chunks(Stage::Tokenize);
    assert_eq!(tokenized_first, 8, "first scan tokenizes every chunk");

    assert_eq!(full_scan(&op), expected, "results stay correct from maps");
    let tokenized_second = op.profiler().chunks(Stage::Tokenize);
    assert_eq!(
        tokenized_second, tokenized_first,
        "second scan reuses cached positional maps (no new TOKENIZE work)"
    );
    // Parsing still happened for the re-read chunks.
    assert!(op.profiler().chunks(Stage::Parse) > 8);
}

#[test]
fn without_map_cache_repeat_scans_retokenize() {
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(2)
        .with_cache_chunks(1)
        .with_policy(WritePolicy::ExternalTables);
    let (op, _) = operator(cfg, SimDisk::instant());
    full_scan(&op);
    let first = op.profiler().chunks(Stage::Tokenize);
    full_scan(&op);
    assert!(op.profiler().chunks(Stage::Tokenize) > first);
}

fn throttled(read_bw: u64) -> SimDisk {
    SimDisk::new(
        DiskConfig {
            read_bw,
            write_bw: read_bw,
            cached_read_bw: u64::MAX / 4,
            seek_latency: Duration::ZERO,
            page_cache_bytes: 0,
            page_bytes: 256 * 1024,
        },
        VirtualClock::shared(),
    )
}

#[test]
fn resource_advice_detects_io_bound() {
    // A very slow device with plenty of workers: conversion keeps up easily.
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(4)
        .with_policy(WritePolicy::ExternalTables);
    let (op, _) = operator(cfg, throttled(256 * 1024)); // 256 KiB/s virtual
    full_scan(&op);
    match op.resource_advice() {
        ResourceAdvice::IoBound { sufficient_workers } => {
            assert!(sufficient_workers <= 4);
        }
        other => panic!("expected IoBound, got {other:?}"),
    }
}

#[test]
fn resource_advice_unknown_before_any_scan() {
    let cfg = ScanRawConfig::default().with_workers(2);
    let (op, _) = operator(cfg, SimDisk::instant());
    assert_eq!(op.resource_advice(), ResourceAdvice::Unknown);
}

#[test]
fn resource_advice_detects_cpu_bound() {
    // An (almost) infinitely fast device: conversion time dominates.
    // SimDisk::instant gives ~zero I/O time, which reads as Unknown/CpuBound;
    // use a fast-but-nonzero device so both sides are measured.
    let cfg = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(1)
        .with_policy(WritePolicy::ExternalTables);
    let (op, _) = operator(cfg, throttled(10 * 1024 * 1024 * 1024));
    full_scan(&op);
    match op.resource_advice() {
        ResourceAdvice::CpuBound { suggested_workers } => {
            assert!(suggested_workers >= 1);
        }
        // On extremely fast test machines the virtual I/O can still dominate
        // the tiny real conversion cost; accept Balanced but never IoBound
        // with an expansion suggestion below the current worker count.
        ResourceAdvice::Balanced => {}
        other => panic!("expected CpuBound/Balanced, got {other:?}"),
    }
}
