//! Deterministic schedule stress harness.
//!
//! The pipeline's two central shared structures — the crossbeam-shim channel
//! and the [`ChunkCache`] — are driven through thousands of *seeded
//! permutations* of operation interleavings (send/recv/drop/disconnect
//! orders, insert/get/evict orders) and checked against straight-line
//! reference models after every step. A failure prints its seed; re-running
//! with that seed reproduces the exact schedule.
//!
//! Three layers:
//! 1. single-threaded channel permutations vs. a queue model (every result
//!    and every intermediate length must match, including disconnection
//!    semantics),
//! 2. single-threaded cache permutations vs. an LRU model (victims, hit and
//!    miss counters, speculative-loading order),
//! 3. multi-threaded conservation runs (no chunk lost or duplicated across
//!    real producer/consumer threads).

use crossbeam::channel::{self, Receiver, SendTimeoutError, Sender, TryRecvError};
use scanraw::ChunkCache;
use scanraw_types::{BinaryChunk, ChunkId};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Seed counts per layer; the harness promises ≥ 1000 distinct interleavings.
const CHANNEL_SEEDS: u64 = 600;
const CACHE_SEEDS: u64 = 420;
const MT_RUNS: u64 = 8;

#[test]
fn harness_covers_at_least_1000_interleavings() {
    const { assert!(CHANNEL_SEEDS + CACHE_SEEDS + MT_RUNS >= 1000) }
}

/// SplitMix64: tiny, seedable, and good enough to scramble schedules.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Layer 1: channel permutations vs. queue model
// ---------------------------------------------------------------------------

/// Reference semantics of a bounded MPMC channel.
struct ChannelModel {
    queue: VecDeque<u64>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

#[derive(Debug, PartialEq, Eq)]
enum SendOutcome {
    Ok,
    Full,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq)]
enum RecvOutcome {
    Got(u64),
    Empty,
    Disconnected,
}

impl ChannelModel {
    fn send(&mut self, v: u64) -> SendOutcome {
        if self.receivers == 0 {
            SendOutcome::Disconnected
        } else if self.queue.len() >= self.cap {
            SendOutcome::Full
        } else {
            self.queue.push_back(v);
            SendOutcome::Ok
        }
    }

    fn recv(&mut self) -> RecvOutcome {
        match self.queue.pop_front() {
            Some(v) => RecvOutcome::Got(v),
            None if self.senders == 0 => RecvOutcome::Disconnected,
            None => RecvOutcome::Empty,
        }
    }
}

fn real_send(tx: &Sender<u64>, v: u64) -> SendOutcome {
    match tx.send_timeout(v, Duration::ZERO) {
        Ok(()) => SendOutcome::Ok,
        Err(SendTimeoutError::Timeout(_)) => SendOutcome::Full,
        Err(SendTimeoutError::Disconnected(_)) => SendOutcome::Disconnected,
    }
}

fn real_recv(rx: &Receiver<u64>) -> RecvOutcome {
    match rx.try_recv() {
        Ok(v) => RecvOutcome::Got(v),
        Err(TryRecvError::Empty) => RecvOutcome::Empty,
        Err(TryRecvError::Disconnected) => RecvOutcome::Disconnected,
    }
}

/// One seeded permutation: a random schedule of sends, receives, endpoint
/// clones and endpoint drops, with the model consulted after every step.
fn channel_permutation(seed: u64) {
    let mut rng = Rng::new(seed);
    let cap = 1 + rng.below(4) as usize;
    let (tx, rx) = channel::bounded::<u64>(cap);
    let mut senders = vec![tx];
    let mut receivers = vec![rx];
    let mut model = ChannelModel {
        queue: VecDeque::new(),
        cap,
        senders: 1,
        receivers: 1,
    };
    let mut next_val = 0u64;

    for step in 0..40 {
        match rng.below(10) {
            // Send from a random live sender.
            0..=3 if !senders.is_empty() => {
                let i = rng.below(senders.len() as u64) as usize;
                let v = next_val;
                next_val += 1;
                assert_eq!(
                    real_send(&senders[i], v),
                    model.send(v),
                    "seed {seed} step {step}: send outcome diverged"
                );
            }
            // Receive on a random live receiver.
            4..=7 if !receivers.is_empty() => {
                let i = rng.below(receivers.len() as u64) as usize;
                assert_eq!(
                    real_recv(&receivers[i]),
                    model.recv(),
                    "seed {seed} step {step}: recv outcome diverged"
                );
            }
            // Clone or drop an endpoint.
            8 => {
                if rng.below(2) == 0 && !senders.is_empty() {
                    let i = rng.below(senders.len() as u64) as usize;
                    senders.push(senders[i].clone());
                    model.senders += 1;
                } else if !receivers.is_empty() {
                    let i = rng.below(receivers.len() as u64) as usize;
                    receivers.push(receivers[i].clone());
                    model.receivers += 1;
                }
            }
            9 => {
                if rng.below(2) == 0 && !senders.is_empty() {
                    let i = rng.below(senders.len() as u64) as usize;
                    drop(senders.swap_remove(i));
                    model.senders -= 1;
                } else if !receivers.is_empty() {
                    let i = rng.below(receivers.len() as u64) as usize;
                    drop(receivers.swap_remove(i));
                    model.receivers -= 1;
                }
            }
            _ => {}
        }
        if let Some(rx) = receivers.first() {
            assert_eq!(
                rx.len(),
                model.queue.len(),
                "seed {seed} step {step}: queue length diverged"
            );
        }
        if senders.is_empty() && receivers.is_empty() {
            break;
        }
    }

    // Drain: everything the model says is in flight must come out, in FIFO
    // order, then the disconnection state must match.
    if let Some(rx) = receivers.first() {
        while let Some(expect) = model.queue.pop_front() {
            assert_eq!(
                real_recv(rx),
                RecvOutcome::Got(expect),
                "seed {seed}: drain order diverged"
            );
        }
        let tail = real_recv(rx);
        if senders.is_empty() {
            assert_eq!(tail, RecvOutcome::Disconnected, "seed {seed}");
        } else {
            assert_eq!(tail, RecvOutcome::Empty, "seed {seed}");
        }
    }
}

#[test]
fn channel_schedule_permutations_match_model() {
    for seed in 0..CHANNEL_SEEDS {
        channel_permutation(seed);
    }
}

// ---------------------------------------------------------------------------
// Layer 2: cache permutations vs. LRU model
// ---------------------------------------------------------------------------

/// Reference semantics of [`ChunkCache`]: LRU with loaded-victims-first
/// eviction at (chunk, column)-cell granularity, recency bumped by `get` but
/// not `peek`, reinserts unioning loaded bits, speculative-loading order
/// (`unloaded_cells`) keyed by first-insertion sequence. Model chunks carry
/// two present columns so partial loads are exercised.
const MODEL_COLS: usize = 2;

struct CacheModel {
    entries: Vec<ModelEntry>,
    capacity: usize,
    next_stamp: u64,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct ModelEntry {
    id: u32,
    loaded: [bool; MODEL_COLS],
    stamp: u64,
    seq: u64,
}

impl ModelEntry {
    fn is_loaded(&self) -> bool {
        self.loaded.iter().all(|&b| b)
    }

    fn missing(&self) -> Vec<usize> {
        (0..MODEL_COLS).filter(|&c| !self.loaded[c]).collect()
    }
}

impl CacheModel {
    fn new(capacity: usize) -> Self {
        CacheModel {
            entries: Vec::new(),
            capacity,
            next_stamp: 0,
            next_seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the evicted victim (id, fully-loaded, missing cells), if any.
    fn insert(&mut self, id: u32, cols: &[usize]) -> Option<(u32, bool, Vec<usize>)> {
        self.next_stamp += 1;
        self.next_seq += 1;
        let stamp = self.next_stamp;
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            // Reinsert unions loaded cells: a WRITE-committed cell must never
            // be un-marked by a racing delivery.
            for &c in cols {
                e.loaded[c] = true;
            }
            e.stamp = stamp;
            return None; // replacement keeps the original seq
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|e| e.is_loaded())
                .min_by_key(|e| e.stamp)
                .or_else(|| self.entries.iter().min_by_key(|e| e.stamp))
                .map(|e| e.id);
            if let Some(vid) = victim {
                let pos = self
                    .entries
                    .iter()
                    .position(|e| e.id == vid)
                    .expect("victim");
                let v = self.entries.remove(pos);
                self.evictions += 1;
                evicted = Some((v.id, v.is_loaded(), v.missing()));
            }
        }
        let mut loaded = [false; MODEL_COLS];
        for &c in cols {
            loaded[c] = true;
        }
        self.entries.push(ModelEntry {
            id,
            loaded,
            stamp,
            seq: self.next_seq,
        });
        evicted
    }

    fn get(&mut self, id: u32) -> bool {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.stamp = stamp;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    fn mark_loaded(&mut self, id: u32, cols: &[usize]) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            for &c in cols {
                e.loaded[c] = true;
            }
        }
    }

    fn unloaded_cells(&self) -> Vec<(u32, Vec<usize>)> {
        let mut v: Vec<(u64, u32, Vec<usize>)> = self
            .entries
            .iter()
            .filter(|e| !e.is_loaded())
            .map(|e| (e.seq, e.id, e.missing()))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, id, m)| (id, m)).collect()
    }
}

fn chunk(id: u32) -> Arc<BinaryChunk> {
    let mut c = BinaryChunk::empty(ChunkId(id), id as u64 * 10, 10, MODEL_COLS);
    for col in c.columns.iter_mut() {
        *col = Some(scanraw_types::ColumnData::Int64(vec![id as i64; 10]));
    }
    Arc::new(c)
}

/// Random subset of the model's column indices.
fn col_subset(rng: &mut Rng) -> Vec<usize> {
    let mask = rng.below(1 << MODEL_COLS);
    (0..MODEL_COLS).filter(|&c| mask & (1 << c) != 0).collect()
}

fn cache_permutation(seed: u64) {
    let mut rng = Rng::new(seed ^ 0xc0ff_ee00);
    let capacity = 2 + rng.below(4) as usize;
    let cache = ChunkCache::new(capacity);
    let mut model = CacheModel::new(capacity);
    let id_space = 2 + rng.below(8) as u32;

    for step in 0..60 {
        let id = rng.below(id_space as u64) as u32;
        match rng.below(8) {
            0..=2 => {
                let cols = col_subset(&mut rng);
                let real = cache
                    .insert(chunk(id), &cols)
                    .map(|e| (e.id.0, e.loaded, e.missing_cols));
                let want = model.insert(id, &cols);
                assert_eq!(real, want, "seed {seed} step {step}: eviction diverged");
            }
            3..=4 => {
                let real = cache.get(ChunkId(id)).is_some();
                let want = model.get(id);
                assert_eq!(real, want, "seed {seed} step {step}: get diverged");
            }
            5 => {
                let cols = col_subset(&mut rng);
                cache.mark_loaded(ChunkId(id), &cols);
                model.mark_loaded(id, &cols);
            }
            6 => {
                let real = cache
                    .unloaded_cells()
                    .into_iter()
                    .next()
                    .map(|(c, missing)| (c.id.0, missing));
                assert_eq!(
                    real,
                    model.unloaded_cells().into_iter().next(),
                    "seed {seed} step {step}: speculative-load order diverged"
                );
            }
            7 => {
                let real: Vec<(u32, Vec<usize>)> = cache
                    .unloaded_cells()
                    .into_iter()
                    .map(|(c, missing)| (c.id.0, missing))
                    .collect();
                assert_eq!(
                    real,
                    model.unloaded_cells(),
                    "seed {seed} step {step}: safeguard flush set diverged"
                );
            }
            _ => unreachable!(),
        }
        // Standing invariants after every step.
        assert!(cache.len() <= capacity, "seed {seed}: capacity exceeded");
        let mut real_ids: Vec<u32> = cache.cached_ids().iter().map(|c| c.0).collect();
        real_ids.sort_unstable();
        let mut want_ids: Vec<u32> = model.entries.iter().map(|e| e.id).collect();
        want_ids.sort_unstable();
        assert_eq!(
            real_ids, want_ids,
            "seed {seed} step {step}: contents diverged"
        );
    }

    let c = cache.counters();
    assert_eq!(
        (c.hits, c.misses, c.evictions),
        (model.hits, model.misses, model.evictions),
        "seed {seed}: lifetime counters diverged"
    );
}

#[test]
fn cache_schedule_permutations_match_model() {
    for seed in 0..CACHE_SEEDS {
        cache_permutation(seed);
    }
}

// ---------------------------------------------------------------------------
// Layer 3: multi-threaded conservation
// ---------------------------------------------------------------------------

/// Real threads, seeded per-thread schedules: every value sent is received
/// exactly once across all consumers, and consumers observe disconnection
/// (not a hang, not a loss) once every producer is done.
fn conservation_run(seed: u64, producers: usize, consumers: usize) {
    const PER_PRODUCER: u64 = 500;
    let (tx, rx) = channel::bounded::<u64>(4);

    let mut handles = Vec::new();
    for p in 0..producers {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng::new(seed * 31 + p as u64);
            for i in 0..PER_PRODUCER {
                let v = (p as u64) * PER_PRODUCER + i;
                tx.send(v).expect("receivers alive");
                if rng.below(8) == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    drop(tx); // consumers must see Disconnected after the producers finish

    let mut consumers_h = Vec::new();
    for c in 0..consumers {
        let rx = rx.clone();
        consumers_h.push(std::thread::spawn(move || {
            let mut rng = Rng::new(seed * 67 + c as u64);
            let mut got = Vec::new();
            // Runs until Disconnected: all producers done, queue drained.
            while let Ok(v) = rx.recv() {
                got.push(v);
                if rng.below(8) == 0 {
                    std::thread::yield_now();
                }
            }
            got
        }));
    }
    drop(rx);

    for h in handles {
        h.join().expect("producer");
    }
    let mut all: Vec<u64> = Vec::new();
    for h in consumers_h {
        all.extend(h.join().expect("consumer"));
    }
    let expected = producers as u64 * PER_PRODUCER;
    assert_eq!(
        all.len() as u64,
        expected,
        "seed {seed}: chunk count diverged"
    );
    all.sort_unstable();
    all.dedup();
    assert_eq!(
        all.len() as u64,
        expected,
        "seed {seed}: duplicate or lost values"
    );
}

#[test]
fn multithreaded_conservation_across_seeds() {
    for seed in 0..MT_RUNS {
        let producers = 1 + (seed as usize % 3);
        let consumers = 1 + (seed as usize % 2);
        conservation_run(seed, producers, consumers);
    }
}
