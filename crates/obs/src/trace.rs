//! Causal span tracing: per-query trace IDs, parent-linked spans, and
//! exporters for Chrome trace-event JSON and folded-stack flamegraphs.
//!
//! The [`SpanRecorder`] is the tracing twin of the event journal: spans are
//! begun and ended against the same injectable [`TimeSource`], so a pipeline
//! running on the simulated device clock produces byte-identical traces run
//! after run. The recorder is lock-light — span IDs come from atomics, and a
//! single mutex guards the open-span table and the bounded ring of closed
//! spans (one lock keeps the lock hierarchy trivial).
//!
//! Propagation uses two mechanisms:
//!
//! * **Explicit context** — [`SpanCtx`] (a `Copy` pair of trace + span id)
//!   travels in request structs and channel messages across thread
//!   boundaries.
//! * **Thread-local current span** — within a thread, [`set_current`] pins
//!   the ambient context and [`SpanRecorder::enter_current`] opens children
//!   under it without any parameter threading. Guards restore the previous
//!   context on drop, so nesting is automatic.
//!
//! A finished query's spans are extracted (non-destructively) as a
//! [`QueryTrace`], which validates tree shape and exports to Chrome
//! trace-event JSON (loadable in Perfetto / `about://tracing`) or folded
//! stacks for flamegraph tools.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::journal::TimeSource;
use crate::json;
use crate::json::Value;

/// Identifies one query's causal tree. Minted by [`SpanRecorder::next_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The propagatable pair (trace, span): everything a child span needs to
/// attach itself to the tree. `Copy`, so it travels freely through request
/// structs and channel messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    pub trace: TraceId,
    pub span: SpanId,
}

/// One recorded span: name, parent link, device-clock start/end, and
/// free-form tags (worker id, chunk id, source, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: SpanId,
    pub trace: TraceId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    pub start: Duration,
    pub end: Option<Duration>,
    pub tags: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Wall (device-clock) duration; zero while the span is still open.
    pub fn duration(&self) -> Duration {
        self.end
            .map(|e| e.saturating_sub(self.start))
            .unwrap_or(Duration::ZERO)
    }

    /// The value of a tag, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct SpanStore {
    open: HashMap<u64, SpanRecord>,
    closed: VecDeque<SpanRecord>,
    dropped: u64,
}

struct RecorderInner {
    store: Mutex<SpanStore>,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    enabled: AtomicBool,
    now: TimeSource,
    capacity: usize,
}

/// Retained closed spans; enough for several large traced queries.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Lock-light span sink shared by every layer of one operator/engine.
///
/// Cloning shares state. Begin/end are cheap: one clock read, one short
/// mutex hold. When disabled (see [`SpanRecorder::set_enabled`]) `begin`
/// records nothing and the whole subsystem costs two atomic loads per span
/// site.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        // effect-ok: the explicitly wall-clock default; deterministic traces inject with_time_source
        let epoch = Instant::now();
        SpanRecorder::with_time_source(Arc::new(move || epoch.elapsed()))
    }
}

impl SpanRecorder {
    /// Wall-clock timestamps relative to creation.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Timestamps come from `now` — e.g. the simulated device clock, making
    /// traces deterministic under simio.
    pub fn with_time_source(now: TimeSource) -> Self {
        SpanRecorder {
            inner: Arc::new(RecorderInner {
                store: Mutex::new(SpanStore {
                    // effect-ok: open-span map is keyed-access; exports emit in tree order, never map order
                    open: HashMap::new(),
                    closed: VecDeque::new(),
                    dropped: 0,
                }),
                next_span: AtomicU64::new(1),
                next_trace: AtomicU64::new(1),
                enabled: AtomicBool::new(true),
                now,
                capacity: DEFAULT_SPAN_CAPACITY,
            }),
        }
    }

    /// Turns recording on/off. Off, `begin` is a near-no-op; callers that
    /// gate trace minting on [`SpanRecorder::enabled`] pay nothing at all.
    pub fn set_enabled(&self, on: bool) {
        // relaxed-ok: the flag is an independent sample; stale reads only delay the toggle by one span
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        // relaxed-ok: the flag is an independent sample; stale reads only delay the toggle by one span
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Mints a fresh trace id for one query.
    pub fn next_trace(&self) -> TraceId {
        // relaxed-ok: ids only need uniqueness, not ordering across threads
        TraceId(self.inner.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Opens a span. Returns a fresh id even when disabled (in which case
    /// nothing is recorded and the eventual `end` is a no-op).
    pub fn begin(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        tags: Vec<(&'static str, String)>,
    ) -> SpanId {
        // relaxed-ok: ids only need uniqueness, not ordering across threads
        let id = SpanId(self.inner.next_span.fetch_add(1, Ordering::Relaxed));
        if !self.enabled() {
            return id;
        }
        let start = (self.inner.now)();
        let record = SpanRecord {
            id,
            trace,
            parent,
            name,
            start,
            end: None,
            tags,
        };
        let mut store = self.inner.store.lock().expect("span store lock");
        store.open.insert(id.0, record);
        id
    }

    /// Closes a span; unknown ids (disabled at begin, or already closed) are
    /// ignored.
    pub fn end(&self, id: SpanId) {
        let end = (self.inner.now)();
        let mut store = self.inner.store.lock().expect("span store lock");
        if let Some(mut record) = store.open.remove(&id.0) {
            record.end = Some(end);
            if store.closed.len() == self.inner.capacity {
                store.closed.pop_front();
                store.dropped += 1;
            }
            store.closed.push_back(record);
        }
    }

    /// Appends a tag to a still-open span. Streaming reads discover their
    /// chunk id only after the device returns, so the span is opened bare
    /// and attributed here; unknown or already-closed ids are ignored.
    pub fn add_tag(&self, id: SpanId, key: &'static str, value: String) {
        let mut store = self.inner.store.lock().expect("span store lock");
        if let Some(record) = store.open.get_mut(&id.0) {
            record.tags.push((key, value));
        }
    }

    /// Opens a child of an explicit context and makes it the thread's
    /// current span until the guard drops.
    pub fn enter(
        &self,
        ctx: SpanCtx,
        name: &'static str,
        tags: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        let id = self.begin(ctx.trace, Some(ctx.span), name, tags);
        SpanGuard::install(
            self.clone(),
            SpanCtx {
                trace: ctx.trace,
                span: id,
            },
        )
    }

    /// Opens a root span (no parent) for a trace and makes it current.
    pub fn enter_root(
        &self,
        trace: TraceId,
        name: &'static str,
        tags: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        let id = self.begin(trace, None, name, tags);
        SpanGuard::install(self.clone(), SpanCtx { trace, span: id })
    }

    /// Opens a child of the thread's current span, if one is pinned;
    /// otherwise records nothing and returns `None`.
    pub fn enter_current(
        &self,
        name: &'static str,
        tags: Vec<(&'static str, String)>,
    ) -> Option<SpanGuard> {
        current().map(|ctx| self.enter(ctx, name, tags))
    }

    /// Records a zero-duration marker span under the current span, if any.
    pub fn instant_current(&self, name: &'static str, tags: Vec<(&'static str, String)>) {
        if let Some(ctx) = current() {
            let id = self.begin(ctx.trace, Some(ctx.span), name, tags);
            self.end(id);
        }
    }

    /// Total spans (open + closed) recorded for a trace.
    pub fn span_count(&self, trace: TraceId) -> u64 {
        let store = self.inner.store.lock().expect("span store lock");
        let open = store.open.values().filter(|s| s.trace == trace).count();
        let closed = store.closed.iter().filter(|s| s.trace == trace).count();
        (open + closed) as u64
    }

    /// Closed spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.inner.store.lock().expect("span store lock").dropped
    }

    /// Non-destructive extraction of one trace's spans (open spans included,
    /// with `end: None`), sorted by start time then id.
    pub fn trace(&self, trace: TraceId) -> QueryTrace {
        let store = self.inner.store.lock().expect("span store lock");
        let mut spans: Vec<SpanRecord> = store
            .closed
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect();
        spans.extend(store.open.values().filter(|s| s.trace == trace).cloned());
        drop(store);
        spans.sort_by_key(|a| (a.start, a.id));
        QueryTrace { trace, spans }
    }
}

/// Best-effort worker label derived from the current thread's name: pipeline
/// worker threads follow the `…-worker-<table>-<n>` convention, whose
/// trailing index becomes the label; `…-read-…` threads map to `read`;
/// anything else (including unnamed threads) is `inline`.
pub fn worker_label() -> String {
    match std::thread::current().name() {
        Some(name) => match name.rsplit_once('-') {
            Some((head, index)) if head.contains("worker") => index.to_string(),
            _ if name.contains("-read-") => "read".to_string(),
            _ => "inline".to_string(),
        },
        None => "inline".to_string(),
    }
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

/// The thread's ambient span context, if one is pinned.
pub fn current() -> Option<SpanCtx> {
    CURRENT.with(Cell::get)
}

/// Pins `ctx` as the thread's current span without opening a new one; the
/// previous context is restored when the guard drops. Used at the top of
/// pipeline threads that receive their context over a channel.
pub fn set_current(ctx: SpanCtx) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CurrentGuard { prev }
}

/// Restores the previous thread-local context on drop.
pub struct CurrentGuard {
    prev: Option<SpanCtx>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An open span pinned as the thread's current context; ends the span and
/// restores the previous context on drop.
pub struct SpanGuard {
    recorder: SpanRecorder,
    ctx: SpanCtx,
    prev: Option<SpanCtx>,
}

impl SpanGuard {
    fn install(recorder: SpanRecorder, ctx: SpanCtx) -> SpanGuard {
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        SpanGuard {
            recorder,
            ctx,
            prev,
        }
    }

    /// The context of the span this guard holds open — hand it to children
    /// on other threads.
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.recorder.end(self.ctx.span);
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One query's validated span tree plus its exporters.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub trace: TraceId,
    /// Sorted by (start, id); open spans carry `end: None`.
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// The root span (no parent), when the tree is well-formed.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Spans with a given name, in start order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Checks the tree is well-formed: non-empty, exactly one root, every
    /// span closed with `end >= start`, and every parent present and opened
    /// no later than its child (timestamps are monotone on the device
    /// clock).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.spans.is_empty() {
            return Err(format!("trace {} has no spans", self.trace.0));
        }
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id.0, s)).collect();
        let roots = self.spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 {
            return Err(format!(
                "trace {} has {roots} root spans (expected 1)",
                self.trace.0
            ));
        }
        for span in &self.spans {
            let end = span
                .end
                .ok_or_else(|| format!("span {} `{}` was never closed", span.id.0, span.name))?;
            if end < span.start {
                return Err(format!(
                    "span {} `{}` ends before it starts",
                    span.id.0, span.name
                ));
            }
            if let Some(parent) = span.parent {
                let p = by_id.get(&parent.0).ok_or_else(|| {
                    format!(
                        "span {} `{}` references missing parent {}",
                        span.id.0, span.name, parent.0
                    )
                })?;
                if p.start > span.start {
                    return Err(format!(
                        "span {} `{}` starts before its parent `{}`",
                        span.id.0, span.name, p.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Chrome trace-event JSON: an array of `B`/`E` duration events (plus
    /// `M` thread-name metadata), loadable in Perfetto or
    /// `about://tracing`. Spans are laid out on virtual threads by pipeline
    /// role: control (query/scan/merge) on tid 1, READ on tid 2, WRITE on
    /// tid 3, conversion/exec workers on tid 100+w; retries, fallbacks, and
    /// disk ops inherit their parent's lane. Within each lane events are
    /// emitted in tree order, so `B`/`E` pairs nest correctly even when the
    /// virtual clock produces equal timestamps.
    // lint-zone: deterministic
    pub fn to_chrome_json(&self) -> Value {
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id.0, s)).collect();
        // effect-ok: keyed memo for lane lookup; events are emitted in span tree order
        let mut tid_memo: HashMap<u64, u64> = HashMap::new();
        for span in &self.spans {
            tid_of(span, &by_id, &mut tid_memo);
        }

        // Children in (start, id) order, per parent.
        // effect-ok: keyed lookup during the tree walk; per-parent Vecs keep insertion order
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for span in &self.spans {
            if let Some(parent) = span.parent {
                children.entry(parent.0).or_default().push(span);
            }
        }
        for list in children.values_mut() {
            list.sort_by_key(|a| (a.start, a.id));
        }

        let mut lanes: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for span in &self.spans {
            let tid = tid_memo[&span.id.0];
            let is_lane_root = match span.parent {
                None => true,
                Some(p) => tid_memo.get(&p.0).copied() != Some(tid),
            };
            if is_lane_root {
                lanes.entry(tid).or_default().push(span);
            }
        }

        let mut events: Vec<Value> = Vec::new();
        for &tid in lanes.keys() {
            events.push(json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane_name(tid)},
            }));
        }
        for (&tid, roots) in &lanes {
            let mut roots: Vec<&SpanRecord> = roots.clone();
            roots.sort_by_key(|a| (a.start, a.id));
            for root in roots {
                emit_lane(root, tid, &children, &tid_memo, &mut events);
            }
        }
        Value::Array(events)
    }

    /// Folded-stack flamegraph text: one `root;...;leaf <self-nanos>` line
    /// per unique path, sorted, weights aggregated. Feed to any
    /// flamegraph renderer that accepts Brendan Gregg's folded format.
    pub fn to_folded(&self) -> String {
        let mut child_total: HashMap<u64, u64> = HashMap::new();
        for span in &self.spans {
            if let Some(parent) = span.parent {
                *child_total.entry(parent.0).or_default() +=
                    u64::try_from(span.duration().as_nanos()).unwrap_or(u64::MAX);
            }
        }
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id.0, s)).collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for span in &self.spans {
            let total = u64::try_from(span.duration().as_nanos()).unwrap_or(u64::MAX);
            let own = total.saturating_sub(child_total.get(&span.id.0).copied().unwrap_or(0));
            let mut path = vec![span.name];
            let mut cursor = span.parent;
            while let Some(parent) = cursor {
                match by_id.get(&parent.0) {
                    Some(p) => {
                        path.push(p.name);
                        cursor = p.parent;
                    }
                    None => break,
                }
            }
            path.reverse();
            *folded.entry(path.join(";")).or_default() += own;
        }
        let mut out = String::new();
        for (path, nanos) in folded {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }
}

/// Virtual-thread assignment for the Chrome export; see
/// [`QueryTrace::to_chrome_json`].
fn tid_of(
    span: &SpanRecord,
    by_id: &HashMap<u64, &SpanRecord>,
    memo: &mut HashMap<u64, u64>,
) -> u64 {
    if let Some(&tid) = memo.get(&span.id.0) {
        return tid;
    }
    let tid = match span.name {
        "query" | "scan" | "merge" => 1,
        "read.chunk" => 2,
        "write.chunk" => 3,
        "tokenize.chunk" | "parse.chunk" | "exec.chunk" => span
            .tag("worker")
            .and_then(|w| w.parse::<u64>().ok())
            .map(|w| 100 + w)
            .unwrap_or(1),
        _ => span
            .parent
            .and_then(|p| by_id.get(&p.0).copied())
            .map(|p| tid_of(p, by_id, memo))
            .unwrap_or(1),
    };
    memo.insert(span.id.0, tid);
    tid
}

fn lane_name(tid: u64) -> String {
    match tid {
        1 => "control".to_string(),
        2 => "read".to_string(),
        3 => "write".to_string(),
        w if w >= 100 => format!("worker-{}", w - 100),
        other => format!("lane-{other}"),
    }
}

fn emit_lane(
    span: &SpanRecord,
    tid: u64,
    children: &HashMap<u64, Vec<&SpanRecord>>,
    tid_memo: &HashMap<u64, u64>,
    events: &mut Vec<Value>,
) {
    let micros = |d: Duration| d.as_nanos() as f64 / 1_000.0;
    let mut args = Value::Object(Default::default());
    args["trace"] = Value::from(span.trace.0);
    args["span"] = Value::from(span.id.0);
    for (key, value) in &span.tags {
        args[*key] = Value::Str(value.clone());
    }
    events.push(json!({
        "name": span.name,
        "ph": "B",
        "pid": 1,
        "tid": tid,
        "ts": micros(span.start),
        "args": args,
    }));
    if let Some(kids) = children.get(&span.id.0) {
        for kid in kids {
            if tid_memo.get(&kid.id.0).copied() == Some(tid) {
                emit_lane(kid, tid, children, tid_memo, events);
            }
        }
    }
    events.push(json!({
        "name": span.name,
        "ph": "E",
        "pid": 1,
        "tid": tid,
        "ts": micros(span.end.unwrap_or(span.start)),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as ClockCell;

    fn ticking_recorder() -> (SpanRecorder, Arc<ClockCell>) {
        let tick = Arc::new(ClockCell::new(0));
        let t = tick.clone();
        let recorder = SpanRecorder::with_time_source(Arc::new(move || {
            // relaxed-ok: test clock; each read advances one microsecond
            Duration::from_micros(t.fetch_add(1, Ordering::Relaxed))
        }));
        (recorder, tick)
    }

    #[test]
    fn begin_end_builds_a_closed_span() {
        let (recorder, _) = ticking_recorder();
        let trace = recorder.next_trace();
        let root = recorder.begin(trace, None, "query", vec![("table", "t".to_string())]);
        let child = recorder.begin(trace, Some(root), "scan", vec![]);
        recorder.end(child);
        recorder.end(root);
        let qt = recorder.trace(trace);
        assert_eq!(qt.spans.len(), 2);
        qt.validate().expect("well-formed");
        assert_eq!(qt.root().unwrap().name, "query");
        assert_eq!(qt.root().unwrap().tag("table"), Some("t"));
    }

    #[test]
    fn guards_nest_and_restore_current() {
        let (recorder, _) = ticking_recorder();
        let trace = recorder.next_trace();
        assert!(current().is_none());
        {
            let root = recorder.enter_root(trace, "query", vec![]);
            assert_eq!(current(), Some(root.ctx()));
            {
                let child = recorder.enter_current("scan", vec![]).expect("current set");
                assert_eq!(current(), Some(child.ctx()));
                recorder.instant_current("db.fallback", vec![]);
            }
            assert_eq!(current(), Some(root.ctx()));
        }
        assert!(current().is_none());
        let qt = recorder.trace(trace);
        qt.validate().expect("well-formed");
        assert_eq!(qt.spans.len(), 3);
        let fallback = qt.spans_named("db.fallback").next().expect("marker span");
        let scan = qt.spans_named("scan").next().expect("scan span");
        assert_eq!(fallback.parent, Some(scan.id));
    }

    #[test]
    fn enter_current_without_context_records_nothing() {
        let (recorder, _) = ticking_recorder();
        assert!(recorder.enter_current("scan", vec![]).is_none());
        recorder.instant_current("db.fallback", vec![]);
        let trace = recorder.next_trace();
        assert_eq!(recorder.trace(trace).spans.len(), 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let (recorder, _) = ticking_recorder();
        recorder.set_enabled(false);
        let trace = recorder.next_trace();
        let id = recorder.begin(trace, None, "query", vec![]);
        recorder.end(id);
        assert_eq!(recorder.trace(trace).spans.len(), 0);
        recorder.set_enabled(true);
        let id = recorder.begin(trace, None, "query", vec![]);
        recorder.end(id);
        assert_eq!(recorder.trace(trace).spans.len(), 1);
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let (recorder, _) = ticking_recorder();
        let trace = recorder.next_trace();
        assert!(recorder.trace(trace).validate().is_err(), "empty trace");

        let root = recorder.begin(trace, None, "query", vec![]);
        assert!(
            recorder.trace(trace).validate().is_err(),
            "open span must fail validation"
        );
        recorder.end(root);
        recorder.trace(trace).validate().expect("closed root ok");

        // A second root breaks single-root shape.
        let stray = recorder.begin(trace, None, "scan", vec![]);
        recorder.end(stray);
        assert!(recorder.trace(trace).validate().is_err(), "two roots");
    }

    #[test]
    fn chrome_export_pairs_and_nests_events() {
        let (recorder, _) = ticking_recorder();
        let trace = recorder.next_trace();
        let root = recorder.begin(trace, None, "query", vec![]);
        let scan = recorder.begin(trace, Some(root), "scan", vec![]);
        let tok = recorder.begin(
            trace,
            Some(scan),
            "tokenize.chunk",
            vec![("worker", "0".to_string()), ("chunk", "3".to_string())],
        );
        recorder.end(tok);
        recorder.end(scan);
        recorder.end(root);

        let doc = recorder.trace(trace).to_chrome_json();
        let parsed = json::parse(&doc.to_json()).expect("chrome json parses");
        let events = parsed.as_array().expect("array of events");
        // Per-tid B/E stack discipline.
        let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
        let mut durations = 0;
        for event in events {
            let ph = event["ph"].as_str().unwrap();
            if ph == "M" {
                continue;
            }
            assert_eq!(event["pid"].as_u64(), Some(1));
            let tid = event["tid"].as_u64().expect("tid");
            assert!(event["ts"].as_f64().is_some(), "ts present");
            let name = event["name"].as_str().unwrap().to_string();
            match ph {
                "B" => {
                    stacks.entry(tid).or_default().push(name);
                    durations += 1;
                }
                "E" => {
                    let top = stacks.get_mut(&tid).and_then(Vec::pop);
                    assert_eq!(top.as_deref(), Some(name.as_str()), "E matches open B");
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stacks.values().all(Vec::is_empty), "every B closed");
        assert_eq!(durations, 3);
        // The worker-tagged span landed on its own lane.
        let tok_b = events
            .iter()
            .find(|e| e["name"].as_str() == Some("tokenize.chunk") && e["ph"].as_str() == Some("B"))
            .unwrap();
        assert_eq!(tok_b["tid"].as_u64(), Some(100));
        assert_eq!(tok_b["args"]["chunk"].as_str(), Some("3"));
    }

    #[test]
    fn folded_output_aggregates_self_time() {
        let (recorder, tick) = ticking_recorder();
        let trace = recorder.next_trace();
        let root = recorder.begin(trace, None, "query", vec![]);
        let scan = recorder.begin(trace, Some(root), "scan", vec![]);
        tick.fetch_add(100, Ordering::Relaxed);
        recorder.end(scan);
        recorder.end(root);
        let folded = recorder.trace(trace).to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("query "), "{folded}");
        assert!(lines[1].starts_with("query;scan "), "{folded}");
        let scan_nanos: u64 = lines[1].rsplit(' ').next().unwrap().parse().unwrap();
        assert!(scan_nanos >= 100_000, "{folded}");
    }

    #[test]
    fn closed_ring_is_bounded() {
        let (recorder, _) = ticking_recorder();
        let trace = recorder.next_trace();
        for _ in 0..(DEFAULT_SPAN_CAPACITY + 10) {
            let id = recorder.begin(trace, None, "scan", vec![]);
            recorder.end(id);
        }
        assert_eq!(recorder.dropped(), 10);
        assert_eq!(recorder.trace(trace).spans.len(), DEFAULT_SPAN_CAPACITY);
    }
}
