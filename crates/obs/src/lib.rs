//! Unified observability for the ScanRaw reproduction.
//!
//! Three pieces, usable separately or bundled through [`Obs`]:
//!
//! * [`metrics`] — a lock-light registry of named counters, gauges, and
//!   fixed-bucket histograms. Handles are atomics behind `Arc`s: cheap to
//!   clone, safe to update from any pipeline thread.
//! * [`journal`] — a bounded ring of typed, timestamped pipeline events
//!   (`SpeculativeWriteTriggered`, `SafeguardFlush`, `CacheHit`, ...), each
//!   with a monotonic sequence number, plus pluggable [`recorder`] sinks
//!   (null, in-memory, JSONL).
//! * [`json`] — a dependency-free JSON value/macro/parser used by every
//!   export path, including the bench harness's result files.
//!
//! The crate deliberately depends on nothing else in the workspace so any
//! layer (simio, core, engine, bench) can use it without cycles; simulated
//! pipelines inject their virtual clock via
//! [`journal::EventJournal::with_time_source`].

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use journal::{
    EventJournal, JournalEntry, ObsEvent, TimeSource, WriteCause, DEFAULT_JOURNAL_CAPACITY,
};
pub use json::Value;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use trace::{QueryTrace, SpanCtx, SpanId, SpanRecord, SpanRecorder, TraceId};

/// Metrics registry, event journal, and span recorder bundled under one
/// cheap-to-clone handle. One `Obs` is shared by an operator and everything
/// it spawns; the journal and the span recorder read the same clock, so
/// events and spans line up on one timeline.
#[derive(Clone, Default)]
pub struct Obs {
    pub metrics: MetricsRegistry,
    pub journal: EventJournal,
    pub trace: SpanRecorder,
}

impl Obs {
    /// Wall-clock timestamps, default journal capacity.
    pub fn new() -> Self {
        Obs::default()
    }

    pub fn with_journal_capacity(capacity: usize) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            journal: EventJournal::with_capacity(capacity),
            trace: SpanRecorder::new(),
        }
    }

    /// Journal and span timestamps come from `now` — e.g. a simulated clock.
    pub fn with_time_source(capacity: usize, now: TimeSource) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            journal: EventJournal::with_time_source(capacity, now.clone()),
            trace: SpanRecorder::with_time_source(now),
        }
    }

    /// Records a journal event; shorthand for `obs.journal.record(..)`.
    pub fn event(&self, event: ObsEvent) -> u64 {
        self.journal.record(event)
    }

    /// One JSON document holding the full metric and journal state.
    pub fn snapshot_json(&self) -> Value {
        json!({
            "metrics": self.metrics.to_json(),
            "journal": self.journal.to_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_combines_metrics_and_journal() {
        let obs = Obs::with_journal_capacity(8);
        obs.metrics.counter("cache.chunk.hit").add(3);
        obs.event(ObsEvent::CacheHit { chunk: 0 });
        obs.event(ObsEvent::SpeculativeWriteTriggered { chunk: 1 });
        let snap = obs.snapshot_json();
        assert_eq!(
            snap["metrics"]["counters"]["cache.chunk.hit"].as_u64(),
            Some(3)
        );
        let entries = snap["journal"]["entries"].as_array().expect("entries");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1]["event"].as_str(),
            Some("SpeculativeWriteTriggered")
        );
        // The snapshot itself must be valid JSON text.
        let round = json::parse(&snap.to_json_pretty()).expect("parse");
        assert_eq!(round, snap);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new();
        let obs2 = obs.clone();
        obs2.metrics.counter("a.b.c").inc();
        obs2.event(ObsEvent::ReadBlocked { chunk: 0 });
        assert_eq!(obs.metrics.counter_value("a.b.c"), Some(1));
        assert_eq!(obs.journal.len(), 1);
    }
}
