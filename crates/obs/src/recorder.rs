//! Pluggable sinks for journal entries.
//!
//! A [`Recorder`] sees every event the moment it is recorded — before the
//! bounded ring applies its retention policy — so a recorder is the way to
//! capture a complete trace of a run. Three implementations ship here:
//! [`NullRecorder`] (the default), [`MemoryRecorder`] (tests, assertions),
//! and [`JsonlRecorder`] (one JSON object per line to any `io::Write`).

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::journal::JournalEntry;

/// Observes journal entries as they are recorded. Called under the journal
/// lock, so implementations should be quick; heavy sinks should buffer.
pub trait Recorder: Send {
    fn record(&mut self, entry: &JournalEntry);

    /// Flushes any buffered output; default is a no-op.
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _entry: &JournalEntry) {}
}

/// Keeps every entry in memory. Clone the recorder before installing it to
/// retain a handle for reading the capture back.
#[derive(Debug, Default, Clone)]
pub struct MemoryRecorder {
    entries: Arc<Mutex<Vec<JournalEntry>>>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().expect("recorder lock").clone()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().expect("recorder lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, entry: &JournalEntry) {
        self.entries
            .lock()
            .expect("recorder lock")
            .push(entry.clone());
    }
}

/// Writes each entry as one compact JSON line (JSONL).
pub struct JsonlRecorder<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonlRecorder<W> {
    pub fn new(writer: W) -> Self {
        JsonlRecorder { writer }
    }

    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&mut self, entry: &JournalEntry) {
        // A sink error must not take down the pipeline; drop the line.
        let _ = writeln!(self.writer, "{}", entry.to_json().to_json());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Parses JSONL produced by [`JsonlRecorder`] back into entries.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEntry>, String> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let value = crate::json::parse(line).map_err(|e| e.to_string())?;
            JournalEntry::from_json(&value).ok_or_else(|| format!("bad journal entry: {line}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventJournal, ObsEvent, WriteCause};

    #[test]
    fn memory_recorder_sees_dropped_entries_too() {
        let journal = EventJournal::with_capacity(2);
        let capture = MemoryRecorder::new();
        journal.set_recorder(Box::new(capture.clone()));
        for i in 0..5 {
            journal.record(ObsEvent::CacheHit { chunk: i });
        }
        // Ring retains 2, but the recorder saw all 5.
        assert_eq!(journal.len(), 2);
        assert_eq!(capture.len(), 5);
        assert_eq!(capture.entries()[0].seq, 0);
    }

    #[test]
    fn jsonl_round_trip() {
        // Satellite requirement: serialize -> parse -> compare equal.
        let journal = EventJournal::with_capacity(64);
        journal.set_recorder(Box::new(JsonlRecorder::new(Vec::new())));
        journal.record(ObsEvent::QueryStart {
            table: "lineitem".into(),
            columns: 16,
        });
        journal.record(ObsEvent::SpeculativeWriteTriggered { chunk: 3 });
        journal.record(ObsEvent::WriteQueued {
            chunk: 4,
            cause: WriteCause::Eager,
        });
        journal.record(ObsEvent::SafeguardFlush { chunks: 2 });

        // Serialise the retained ring to JSONL by hand and round-trip it.
        let text: String = journal
            .entries()
            .iter()
            .map(|e| e.to_json().to_json() + "\n")
            .collect();
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, journal.entries());
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        let journal = EventJournal::with_capacity(8);
        // Shared buffer so we can inspect what the recorder wrote.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        journal.set_recorder(Box::new(JsonlRecorder::new(buf.clone())));
        journal.record(ObsEvent::CacheEvict {
            chunk: 11,
            loaded: false,
        });
        journal.flush_recorder();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].event.kind(), "CacheEvict");
    }

    #[test]
    fn parse_jsonl_rejects_bad_lines() {
        assert!(parse_jsonl("{\"seq\": 1}\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
        assert_eq!(parse_jsonl("\n\n").expect("empty ok").len(), 0);
    }
}
