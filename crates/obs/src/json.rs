//! A small self-contained JSON value type, builder macro, parser, and
//! printers.
//!
//! Every export path in the observability layer — metric snapshots, journal
//! entries, bench results — bottoms out here, so the repo does not need an
//! external JSON dependency. Objects are backed by `BTreeMap`, which makes
//! the output deterministic (keys sorted), a property the bench harness
//! relies on when diffing result files.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric reading: both `Int` and `Float` convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Non-panicking lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Compact single-line serialisation.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Multi-line serialisation with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

/// Compact serialisation, mirroring the `serde_json` free-function shape.
pub fn to_string(value: &Value) -> String {
    value.to_json()
}

/// Pretty serialisation, mirroring the `serde_json` free-function shape.
pub fn to_string_pretty(value: &Value) -> String {
    value.to_json_pretty()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the value
                // parses back as a float rather than collapsing to an int.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; degrade the same way serde does.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- From impls

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Int(n as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        match i64::try_from(n) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(n as f64),
        }
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::from(n as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Value::Object(m)
    }
}

/// By-reference conversion used by the `json!` macro so leaf expressions
/// are borrowed, not moved — `json!({"k": row[1]})` works on a `Vec<String>`
/// the same way it does with `serde_json`.
pub trait ToValue {
    fn to_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToValue for T {
    fn to_value(&self) -> Value {
        self.clone().into()
    }
}

// ----------------------------------------------------------------- Indexing

/// Keys usable with `value[...]`: strings index objects, usize indexes
/// arrays.
pub trait JsonIndex {
    fn index_into<'a>(&self, v: &'a Value) -> &'a Value;
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value;
}

static NULL: Value = Value::Null;

impl JsonIndex for str {
    fn index_into<'a>(&self, v: &'a Value) -> &'a Value {
        v.get(self).unwrap_or(&NULL)
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        // Auto-vivify: indexing Null with a string key turns it into an
        // object, so `json["a"]["b"] = x` builds the path as it goes.
        if v.is_null() {
            *v = Value::Object(BTreeMap::new());
        }
        match v {
            Value::Object(map) => map.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {} with a string key", kind_name(other)),
        }
    }
}

impl JsonIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> &'a Value {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        self.as_str().index_into_mut(v)
    }
}

impl JsonIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> &'a Value {
        match v {
            Value::Array(a) => a.get(*self).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        match v {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(*self)
                    .unwrap_or_else(|| panic!("index {self} out of bounds (len {len})"))
            }
            other => panic!("cannot index {} with a usize", kind_name(other)),
        }
    }
}

impl<I: JsonIndex + ?Sized> JsonIndex for &I {
    fn index_into<'a>(&self, v: &'a Value) -> &'a Value {
        (**self).index_into(v)
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        (**self).index_into_mut(v)
    }
}

impl<I: JsonIndex> Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self)
    }
}

impl<I: JsonIndex> IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_into_mut(self)
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// ------------------------------------------------------------------- Parser

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    /// Called with `pos` on the `u`; handles surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1;
        let hi = self.hex4()?;
        let cp = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.error("invalid low surrogate"));
                }
                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
            } else {
                return Err(self.error("unpaired surrogate"));
            }
        } else {
            hi
        };
        char::from_u32(cp).ok_or_else(|| self.error("invalid code point"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

// ------------------------------------------------------------------- Macro

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
///
/// Keys may be string literals or expressions evaluating to strings; values
/// may be literals, nested objects/arrays, or arbitrary expressions with an
/// `Into<Value>` type.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: accumulate parsed elements on the left.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entry munching: key tts accumulate in parens, then the
    // value is parsed and the pair inserted.
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- leaves.
    (null) => {
        $crate::json::Value::Null
    };
    (true) => {
        $crate::json::Value::Bool(true)
    };
    (false) => {
        $crate::json::Value::Bool(false)
    };
    ([]) => {
        $crate::json::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::json::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::json::Value::Object(::std::collections::BTreeMap::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::json::Value::Object({
            let mut object = ::std::collections::BTreeMap::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::json::ToValue::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_documents() {
        let n = 42u64;
        let v = json!({
            "name": "fig5",
            "rows": n,
            "ratio": 0.5,
            "nested": {"empty": {}, "flag": true},
            "list": [1, 2.5, "x", null],
        });
        assert_eq!(v["name"].as_str(), Some("fig5"));
        assert_eq!(v["rows"].as_u64(), Some(42));
        assert_eq!(v["nested"]["flag"].as_bool(), Some(true));
        assert_eq!(v["list"].as_array().map(Vec::len), Some(4));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn index_mut_auto_vivifies_paths() {
        let mut v = json!({});
        v["a"]["b"][format!("k{}", 3)] = json!(7);
        assert_eq!(v["a"]["b"]["k3"].as_i64(), Some(7));
    }

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "s": "line\n\"quoted\" \\ tab\t",
            "i": -123,
            "f": 1.0,
            "big": 9.25e18,
            "arr": [true, false, null, {"k": 1}],
        });
        let parsed = parse(&v.to_json()).expect("parse");
        assert_eq!(parsed, v);
        let pretty = parse(&v.to_json_pretty()).expect("parse pretty");
        assert_eq!(pretty, v);
    }

    #[test]
    fn float_int_distinction_survives() {
        let v = json!({"f": 1.0, "i": 1});
        let parsed = parse(&v.to_json()).expect("parse");
        assert_eq!(parsed["f"], Value::Float(1.0));
        assert_eq!(parsed["i"], Value::Int(1));
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#"{"k": "aé✓😀b\tc"}"#).expect("parse");
        assert_eq!(v["k"].as_str(), Some("aé✓😀b\tc"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn object_keys_are_sorted() {
        let v = json!({"b": 1, "a": 2});
        assert_eq!(v.to_json(), r#"{"a":2,"b":1}"#);
    }
}
