//! Lock-light metrics: named counters, gauges, and fixed-bucket histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; the hot update path is pure
//! atomics. The registry itself only takes a lock on registration and on
//! snapshot, never per update, so pipeline threads can bump metrics from
//! inner loops without contending.
//!
//! Names follow the `subsystem.object.verb` convention documented in
//! DESIGN.md — e.g. `cache.chunk.hit`, `disk.read.bytes`,
//! `pipeline.stage.parse.nanos`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json;
use crate::json::Value;

/// Monotonically increasing count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed level (queue depths, in-flight counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn sub(&self, delta: i64) {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` observations (typically nanoseconds or
/// bytes). Bounds are inclusive upper edges; one extra implicit bucket
/// catches everything above the last bound.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Exponential duration bounds in nanoseconds: 1µs to ~4.2s, ×4 per step.
pub fn default_duration_bounds() -> Vec<u64> {
    (0..12).map(|i| 1_000u64 << (2 * i)).collect()
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    pub fn observe(&self, value: u64) {
        let inner = &*self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner
                .buckets
                .iter()
                // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
                inner.min.load(Ordering::Relaxed)
            },
            // relaxed-ok: metrics are monotonic/independent samples; no cross-thread ordering is implied
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough copy of a histogram's state for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// One count per bound plus the trailing overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by walking the buckets
    /// and interpolating linearly within the one holding the target rank.
    /// The first bucket interpolates up from the observed minimum and the
    /// overflow bucket saturates at the observed maximum, so the estimate
    /// never leaves `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += in_bucket;
            if cumulative as f64 >= rank {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = match self.bounds.get(i) {
                    Some(&bound) => bound,
                    None => self.max, // overflow bucket: saturate at the top
                };
                let (lo, hi) = (lo.max(self.min), hi.min(self.max).max(lo.max(self.min)));
                let frac = ((rank - before) / in_bucket as f64).clamp(0.0, 1.0);
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bucket-wise difference against an `earlier` snapshot of the same
    /// histogram: the distribution of observations made in between. `min`
    /// and `max` are re-approximated from the surviving buckets' edges
    /// (per-window extremes are not tracked). Snapshots with different
    /// bounds do not diff; `self` is returned unchanged.
    pub fn saturating_diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if earlier.bounds != self.bounds || earlier.buckets.len() != self.buckets.len() {
            return self.clone();
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let first = buckets.iter().position(|&b| b > 0);
        let last = buckets.iter().rposition(|&b| b > 0);
        let min = match first {
            Some(0) | None => self.min,
            Some(i) => self.bounds[i - 1],
        };
        let max = match last {
            Some(i) if i < self.bounds.len() => self.bounds[i].min(self.max),
            _ => self.max,
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: if count == 0 { 0 } else { min },
            max: if count == 0 { 0 } else { max },
        }
    }

    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let le = self
                    .bounds
                    .get(i)
                    .map(|&b| Value::from(b))
                    .unwrap_or(Value::Str("+inf".to_string()));
                json!({"le": le, "count": count})
            })
            .collect();
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        })
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The process-wide (or per-operator) collection of named metrics.
///
/// Cloning shares the underlying maps; `counter`/`gauge`/`histogram`
/// get-or-register and hand back a clonable handle, so callers keep the
/// handle and never touch the registry lock again.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Registers a histogram with the given bucket bounds; if the name
    /// already exists the existing histogram (and its bounds) wins.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("registry lock");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A histogram pre-sized for durations in nanoseconds.
    pub fn duration_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, &default_duration_bounds())
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let map = self.inner.counters.lock().expect("registry lock");
        map.get(name).map(Counter::get)
    }

    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let map = self.inner.gauges.lock().expect("registry lock");
        map.get(name).map(Gauge::get)
    }

    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let map = self.inner.histograms.lock().expect("registry lock");
        map.get(name).map(Histogram::snapshot)
    }

    /// Exports every metric as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Value {
        let mut counters = Value::Object(Default::default());
        for (name, c) in self.inner.counters.lock().expect("registry lock").iter() {
            counters[name] = Value::from(c.get());
        }
        let mut gauges = Value::Object(Default::default());
        for (name, g) in self.inner.gauges.lock().expect("registry lock").iter() {
            gauges[name] = Value::from(g.get());
        }
        let mut histograms = Value::Object(Default::default());
        for (name, h) in self.inner.histograms.lock().expect("registry lock").iter() {
            histograms[name] = h.snapshot().to_json();
        }
        json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cache.chunk.hit");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("cache.chunk.hit"), Some(5));
        assert_eq!(reg.counter_value("unknown"), None);

        let g = reg.gauge("disk.queue.depth");
        g.set(3);
        g.add(2);
        g.sub(1);
        assert_eq!(reg.gauge_value("disk.queue.depth"), Some(4));
    }

    #[test]
    fn same_name_shares_state() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.counter("x").inc();
        assert_eq!(reg.counter_value("x"), Some(2));
        let reg2 = reg.clone();
        reg2.counter("x").inc();
        assert_eq!(reg.counter_value("x"), Some(3));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 500, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 500 + 5000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5000);
        assert!((s.mean() - s.sum as f64 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let s = Histogram::new(&[10]).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_updates_from_many_threads() {
        // Satellite requirement: hammer one counter and one histogram from
        // >= 4 threads and verify nothing is lost.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = reg.clone();
                thread::spawn(move || {
                    let c = reg.counter("test.op.count");
                    let h = reg.histogram("test.op.nanos", &[64, 4096, 1 << 20]);
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe((t as u64) * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("thread");
        }
        assert_eq!(
            reg.counter_value("test.op.count"),
            Some(THREADS as u64 * PER_THREAD)
        );
        let s = reg.histogram_snapshot("test.op.nanos").expect("histogram");
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, THREADS as u64 * PER_THREAD - 1);
        // Sum of 0..N-1.
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(s.sum, n * (n - 1) / 2);
    }

    #[test]
    fn duration_histogram_defaults() {
        let reg = MetricsRegistry::new();
        let h = reg.duration_histogram("pipeline.stage.read.nanos");
        h.observe_duration(Duration::from_micros(5));
        let s = reg
            .histogram_snapshot("pipeline.stage.read.nanos")
            .expect("histogram");
        assert_eq!(s.count, 1);
        assert_eq!(s.bounds.len(), 12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[100, 200, 400]);
        // 100 uniform observations in (100, 200]: the second bucket.
        for i in 1..=100 {
            h.observe(100 + i);
        }
        let s = h.snapshot();
        // Interpolation inside [100, 200].
        let p50 = s.quantile(0.5);
        assert!((145..=155).contains(&p50), "p50 = {p50}");
        let p95 = s.quantile(0.95);
        assert!((190..=200).contains(&p95), "p95 = {p95}");
        assert_eq!(s.quantile(1.0), 200);
        assert_eq!(s.quantile(0.0), s.min);
    }

    #[test]
    fn quantile_saturates_at_observed_extremes() {
        let h = Histogram::new(&[10]);
        h.observe(5_000); // overflow bucket
        h.observe(7_000);
        let s = h.snapshot();
        assert!(s.quantile(0.99) <= s.max);
        assert!(s.quantile(0.01) >= s.min);
        assert_eq!(Histogram::new(&[10]).snapshot().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_diff_scopes_a_window() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(5);
        h.observe(50);
        let before = h.snapshot();
        h.observe(500);
        h.observe(600);
        let diff = h.snapshot().saturating_diff(&before);
        assert_eq!(diff.count, 2);
        assert_eq!(diff.sum, 1100);
        assert_eq!(diff.buckets, vec![0, 0, 2, 0]);
        // Window extremes approximated from the surviving bucket's edges
        // (upper edge clamped by the all-time max).
        assert_eq!(diff.min, 100);
        assert_eq!(diff.max, 600);
        let p50 = diff.quantile(0.5);
        assert!((100..=600).contains(&p50), "p50 = {p50}");
        // An empty window is all zeros.
        let empty = h.snapshot().saturating_diff(&h.snapshot());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.quantile(0.9), 0);
    }

    #[test]
    fn snapshot_json_carries_percentiles() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 2, 3, 50] {
            h.observe(v);
        }
        let doc = h.snapshot().to_json();
        assert!(doc["p50"].as_u64().is_some());
        assert!(doc["p95"].as_u64().unwrap() >= doc["p50"].as_u64().unwrap());
        assert!(doc["p99"].as_u64().unwrap() >= doc["p95"].as_u64().unwrap());
    }

    #[test]
    fn registry_json_export() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b.c").add(7);
        reg.gauge("d.e.f").set(-2);
        reg.histogram("g.h.i", &[10]).observe(3);
        let v = reg.to_json();
        assert_eq!(v["counters"]["a.b.c"].as_u64(), Some(7));
        assert_eq!(v["gauges"]["d.e.f"].as_i64(), Some(-2));
        assert_eq!(v["histograms"]["g.h.i"]["count"].as_u64(), Some(1));
    }
}
