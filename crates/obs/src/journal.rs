//! The structured event journal: a bounded, timestamped ring of typed
//! pipeline events.
//!
//! Every interesting decision the ScanRaw pipeline makes — a read stalling
//! on a full buffer, a speculative write firing, the safeguard flushing the
//! write queue, a cache hit — is recorded here with a monotonic sequence
//! number. The ring is bounded: when full, the oldest entry is dropped and
//! counted, so a long-running operator keeps the most recent window of
//! activity. Recorders (see [`crate::recorder`]) observe every entry before
//! it enters the ring, including ones the ring later drops.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;
use crate::json::Value;
use crate::recorder::{NullRecorder, Recorder};

/// What happened. Payload fields are plain integers/strings so entries
/// serialise to one JSONL line each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A query began scanning a table.
    QueryStart { table: String, columns: u64 },
    /// A query finished; `elapsed_micros` is wall-clock for the scan.
    QueryEnd {
        table: String,
        chunks: u64,
        rows: u64,
        elapsed_micros: u64,
    },
    /// The READ stage stalled because the text-chunk buffer was full.
    ReadBlocked { chunk: u64 },
    /// The speculative policy decided to load this chunk into the DB
    /// during idle device time.
    SpeculativeWriteTriggered { chunk: u64 },
    /// The safeguard fired and force-flushed queued speculative writes.
    SafeguardFlush { chunks: u64 },
    /// A chunk write was queued for a non-speculative reason.
    WriteQueued { chunk: u64, cause: WriteCause },
    /// Chunk served from the in-memory cache.
    CacheHit { chunk: u64 },
    /// Chunk requested but absent from the cache.
    CacheMiss { chunk: u64 },
    /// Chunk evicted; `loaded` = it already lives in the DB.
    CacheEvict { chunk: u64, loaded: bool },
    /// Chunk skipped entirely by min/max pushdown.
    ChunkSkipped { chunk: u64 },
    /// The operator's worker pool was resized.
    WorkerScaled { from: u64, to: u64 },
    /// A retryable device failure was retried; `attempt` is 1-based.
    IoRetry { target: String, attempt: u64 },
    /// A permanent device failure degraded loading to external-table mode
    /// for the rest of the scan (the query still answers from raw).
    LoadDegraded { chunk: u64 },
    /// A database read of a loaded chunk failed past the retry budget; the
    /// chunk was served by raw conversion instead.
    DbReadFallback { chunk: u64 },
    /// One (chunk, column) cell was durably committed to the database by a
    /// column-granular store; the catalog bit for the cell is now set.
    ColumnCellLoaded { chunk: u64, column: u64 },
    /// A post-crash recovery pass finished: `committed` cells restored,
    /// `dropped` commit records discarded (corrupt or malformed).
    RecoveryCompleted { committed: u64, dropped: u64 },
    /// A causal trace was minted for a query; spans carrying this trace id
    /// land in the operator's [`crate::trace::SpanRecorder`].
    TraceStarted { trace: u64, table: String },
    /// The query finished; `spans` counts the spans recorded under the
    /// trace so far (asynchronous writes may still add more).
    TraceCompleted { trace: u64, spans: u64 },
    /// A query passed admission control into the serving queue; `depth` is
    /// the queue depth *after* the admit.
    QueryAdmitted { tenant: u64, depth: u64 },
    /// Admission control rejected a query: the queue already held `depth`
    /// entries (its configured bound). The caller saw `Error::Overloaded`.
    QueryRejected { tenant: u64, depth: u64 },
    /// A dispatcher formed a shared-scan batch: `queries` queued queries
    /// against `table`, spanning `tenants` distinct tenant ids, answered by
    /// one scan.
    BatchFormed {
        batch: u64,
        table: String,
        queries: u64,
        tenants: u64,
    },
    /// A served query's reply was delivered (success or error). `latency_micros`
    /// is admission→completion on the device clock; `degraded` mirrors the
    /// operator's external-table degradation at completion, attributing
    /// fault-path behaviour to the tenant that experienced it.
    QueryServed {
        tenant: u64,
        batch: u64,
        latency_micros: u64,
        degraded: bool,
    },
}

/// Why a non-speculative write was queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteCause {
    Eager,
    Invisible,
    Eviction,
}

impl WriteCause {
    pub fn name(&self) -> &'static str {
        match self {
            WriteCause::Eager => "eager",
            WriteCause::Invisible => "invisible",
            WriteCause::Eviction => "eviction",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "eager" => Some(WriteCause::Eager),
            "invisible" => Some(WriteCause::Invisible),
            "eviction" => Some(WriteCause::Eviction),
            _ => None,
        }
    }
}

impl ObsEvent {
    /// Stable event-type name used in JSON exports and DESIGN.md.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::QueryStart { .. } => "QueryStart",
            ObsEvent::QueryEnd { .. } => "QueryEnd",
            ObsEvent::ReadBlocked { .. } => "ReadBlocked",
            ObsEvent::SpeculativeWriteTriggered { .. } => "SpeculativeWriteTriggered",
            ObsEvent::SafeguardFlush { .. } => "SafeguardFlush",
            ObsEvent::WriteQueued { .. } => "WriteQueued",
            ObsEvent::CacheHit { .. } => "CacheHit",
            ObsEvent::CacheMiss { .. } => "CacheMiss",
            ObsEvent::CacheEvict { .. } => "CacheEvict",
            ObsEvent::ChunkSkipped { .. } => "ChunkSkipped",
            ObsEvent::WorkerScaled { .. } => "WorkerScaled",
            ObsEvent::IoRetry { .. } => "IoRetry",
            ObsEvent::LoadDegraded { .. } => "LoadDegraded",
            ObsEvent::DbReadFallback { .. } => "DbReadFallback",
            ObsEvent::ColumnCellLoaded { .. } => "ColumnCellLoaded",
            ObsEvent::RecoveryCompleted { .. } => "RecoveryCompleted",
            ObsEvent::TraceStarted { .. } => "TraceStarted",
            ObsEvent::TraceCompleted { .. } => "TraceCompleted",
            ObsEvent::QueryAdmitted { .. } => "QueryAdmitted",
            ObsEvent::QueryRejected { .. } => "QueryRejected",
            ObsEvent::BatchFormed { .. } => "BatchFormed",
            ObsEvent::QueryServed { .. } => "QueryServed",
        }
    }

    pub fn payload(&self) -> Value {
        match self {
            ObsEvent::QueryStart { table, columns } => {
                json!({"table": table, "columns": *columns})
            }
            ObsEvent::QueryEnd {
                table,
                chunks,
                rows,
                elapsed_micros,
            } => json!({
                "table": table,
                "chunks": *chunks,
                "rows": *rows,
                "elapsed_micros": *elapsed_micros,
            }),
            ObsEvent::ReadBlocked { chunk } => json!({"chunk": *chunk}),
            ObsEvent::SpeculativeWriteTriggered { chunk } => json!({"chunk": *chunk}),
            ObsEvent::SafeguardFlush { chunks } => json!({"chunks": *chunks}),
            ObsEvent::WriteQueued { chunk, cause } => {
                json!({"chunk": *chunk, "cause": cause.name()})
            }
            ObsEvent::CacheHit { chunk } => json!({"chunk": *chunk}),
            ObsEvent::CacheMiss { chunk } => json!({"chunk": *chunk}),
            ObsEvent::CacheEvict { chunk, loaded } => {
                json!({"chunk": *chunk, "loaded": *loaded})
            }
            ObsEvent::ChunkSkipped { chunk } => json!({"chunk": *chunk}),
            ObsEvent::WorkerScaled { from, to } => json!({"from": *from, "to": *to}),
            ObsEvent::IoRetry { target, attempt } => {
                json!({"target": target, "attempt": *attempt})
            }
            ObsEvent::LoadDegraded { chunk } => json!({"chunk": *chunk}),
            ObsEvent::DbReadFallback { chunk } => json!({"chunk": *chunk}),
            ObsEvent::ColumnCellLoaded { chunk, column } => {
                json!({"chunk": *chunk, "column": *column})
            }
            ObsEvent::RecoveryCompleted { committed, dropped } => {
                json!({"committed": *committed, "dropped": *dropped})
            }
            ObsEvent::TraceStarted { trace, table } => {
                json!({"trace": *trace, "table": table})
            }
            ObsEvent::TraceCompleted { trace, spans } => {
                json!({"trace": *trace, "spans": *spans})
            }
            ObsEvent::QueryAdmitted { tenant, depth } => {
                json!({"tenant": *tenant, "depth": *depth})
            }
            ObsEvent::QueryRejected { tenant, depth } => {
                json!({"tenant": *tenant, "depth": *depth})
            }
            ObsEvent::BatchFormed {
                batch,
                table,
                queries,
                tenants,
            } => json!({
                "batch": *batch,
                "table": table,
                "queries": *queries,
                "tenants": *tenants,
            }),
            ObsEvent::QueryServed {
                tenant,
                batch,
                latency_micros,
                degraded,
            } => json!({
                "tenant": *tenant,
                "batch": *batch,
                "latency_micros": *latency_micros,
                "degraded": *degraded,
            }),
        }
    }

    /// Inverse of `kind()` + `payload()`; used by the JSONL round-trip.
    pub fn from_parts(kind: &str, payload: &Value) -> Option<ObsEvent> {
        let chunk = || payload["chunk"].as_u64();
        Some(match kind {
            "QueryStart" => ObsEvent::QueryStart {
                table: payload["table"].as_str()?.to_string(),
                columns: payload["columns"].as_u64()?,
            },
            "QueryEnd" => ObsEvent::QueryEnd {
                table: payload["table"].as_str()?.to_string(),
                chunks: payload["chunks"].as_u64()?,
                rows: payload["rows"].as_u64()?,
                elapsed_micros: payload["elapsed_micros"].as_u64()?,
            },
            "ReadBlocked" => ObsEvent::ReadBlocked { chunk: chunk()? },
            "SpeculativeWriteTriggered" => ObsEvent::SpeculativeWriteTriggered { chunk: chunk()? },
            "SafeguardFlush" => ObsEvent::SafeguardFlush {
                chunks: payload["chunks"].as_u64()?,
            },
            "WriteQueued" => ObsEvent::WriteQueued {
                chunk: chunk()?,
                cause: WriteCause::from_name(payload["cause"].as_str()?)?,
            },
            "CacheHit" => ObsEvent::CacheHit { chunk: chunk()? },
            "CacheMiss" => ObsEvent::CacheMiss { chunk: chunk()? },
            "CacheEvict" => ObsEvent::CacheEvict {
                chunk: chunk()?,
                loaded: payload["loaded"].as_bool()?,
            },
            "ChunkSkipped" => ObsEvent::ChunkSkipped { chunk: chunk()? },
            "WorkerScaled" => ObsEvent::WorkerScaled {
                from: payload["from"].as_u64()?,
                to: payload["to"].as_u64()?,
            },
            "IoRetry" => ObsEvent::IoRetry {
                target: payload["target"].as_str()?.to_string(),
                attempt: payload["attempt"].as_u64()?,
            },
            "LoadDegraded" => ObsEvent::LoadDegraded { chunk: chunk()? },
            "DbReadFallback" => ObsEvent::DbReadFallback { chunk: chunk()? },
            "ColumnCellLoaded" => ObsEvent::ColumnCellLoaded {
                chunk: chunk()?,
                column: payload["column"].as_u64()?,
            },
            "RecoveryCompleted" => ObsEvent::RecoveryCompleted {
                committed: payload["committed"].as_u64()?,
                dropped: payload["dropped"].as_u64()?,
            },
            "TraceStarted" => ObsEvent::TraceStarted {
                trace: payload["trace"].as_u64()?,
                table: payload["table"].as_str()?.to_string(),
            },
            "TraceCompleted" => ObsEvent::TraceCompleted {
                trace: payload["trace"].as_u64()?,
                spans: payload["spans"].as_u64()?,
            },
            "QueryAdmitted" => ObsEvent::QueryAdmitted {
                tenant: payload["tenant"].as_u64()?,
                depth: payload["depth"].as_u64()?,
            },
            "QueryRejected" => ObsEvent::QueryRejected {
                tenant: payload["tenant"].as_u64()?,
                depth: payload["depth"].as_u64()?,
            },
            "BatchFormed" => ObsEvent::BatchFormed {
                batch: payload["batch"].as_u64()?,
                table: payload["table"].as_str()?.to_string(),
                queries: payload["queries"].as_u64()?,
                tenants: payload["tenants"].as_u64()?,
            },
            "QueryServed" => ObsEvent::QueryServed {
                tenant: payload["tenant"].as_u64()?,
                batch: payload["batch"].as_u64()?,
                latency_micros: payload["latency_micros"].as_u64()?,
                degraded: payload["degraded"].as_bool()?,
            },
            _ => return None,
        })
    }
}

/// One journal record: sequence number, time since the journal's epoch, and
/// the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    pub seq: u64,
    pub at: Duration,
    pub event: ObsEvent,
}

impl JournalEntry {
    pub fn to_json(&self) -> Value {
        json!({
            "seq": self.seq,
            "at_nanos": self.at.as_nanos() as u64,
            "event": self.event.kind(),
            "payload": self.event.payload(),
        })
    }

    pub fn from_json(v: &Value) -> Option<JournalEntry> {
        Some(JournalEntry {
            seq: v["seq"].as_u64()?,
            at: Duration::from_nanos(v["at_nanos"].as_u64()?),
            event: ObsEvent::from_parts(v["event"].as_str()?, &v["payload"])?,
        })
    }
}

/// Where timestamps come from. The default is wall-clock relative to the
/// journal's creation; simulated pipelines inject their virtual clock so
/// journal timestamps line up with simulated device time.
pub type TimeSource = Arc<dyn Fn() -> Duration + Send + Sync>;

struct JournalState {
    ring: VecDeque<JournalEntry>,
    next_seq: u64,
    dropped: u64,
    recorder: Box<dyn Recorder>,
}

struct JournalInner {
    state: Mutex<JournalState>,
    capacity: usize,
    now: TimeSource,
}

/// Bounded ring of [`JournalEntry`]s, shareable across threads.
#[derive(Clone)]
pub struct EventJournal {
    inner: Arc<JournalInner>,
}

pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    pub fn new() -> Self {
        EventJournal::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        // effect-ok: the explicitly wall-clock default; deterministic journals inject with_time_source
        let epoch = Instant::now();
        EventJournal::with_time_source(capacity, Arc::new(move || epoch.elapsed()))
    }

    pub fn with_time_source(capacity: usize, now: TimeSource) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        EventJournal {
            inner: Arc::new(JournalInner {
                state: Mutex::new(JournalState {
                    ring: VecDeque::with_capacity(capacity),
                    next_seq: 0,
                    dropped: 0,
                    recorder: Box::new(NullRecorder),
                }),
                capacity,
                now,
            }),
        }
    }

    /// Replaces the recorder sink; entries recorded from now on flow to it.
    pub fn set_recorder(&self, recorder: Box<dyn Recorder>) {
        self.inner.state.lock().expect("journal lock").recorder = recorder;
    }

    /// Records an event, returning its sequence number.
    pub fn record(&self, event: ObsEvent) -> u64 {
        let at = (self.inner.now)();
        let mut state = self.inner.state.lock().expect("journal lock");
        let seq = state.next_seq;
        state.next_seq += 1;
        let entry = JournalEntry { seq, at, event };
        state.recorder.record(&entry);
        if state.ring.len() == self.inner.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(entry);
        seq
    }

    /// A copy of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.inner
            .state
            .lock()
            .expect("journal lock")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("journal lock").ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Entries evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().expect("journal lock").dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.inner.state.lock().expect("journal lock").next_seq
    }

    /// Counts retained entries matching a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&ObsEvent) -> bool) -> usize {
        self.inner
            .state
            .lock()
            .expect("journal lock")
            .ring
            .iter()
            .filter(|e| pred(&e.event))
            .count()
    }

    /// Flushes the attached recorder.
    pub fn flush_recorder(&self) {
        self.inner
            .state
            .lock()
            .expect("journal lock")
            .recorder
            .flush();
    }

    pub fn to_json(&self) -> Value {
        let state = self.inner.state.lock().expect("journal lock");
        let entries: Vec<Value> = state.ring.iter().map(JournalEntry::to_json).collect();
        json!({
            "capacity": self.inner.capacity,
            "dropped": state.dropped,
            "total_recorded": state.next_seq,
            "entries": entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_in_sequence_with_timestamps() {
        let j = EventJournal::with_capacity(16);
        j.record(ObsEvent::CacheMiss { chunk: 1 });
        j.record(ObsEvent::CacheHit { chunk: 1 });
        let entries = j.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert!(entries[0].at <= entries[1].at);
        assert_eq!(entries[0].event.kind(), "CacheMiss");
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        // Satellite requirement: wraparound must preserve ordering and
        // account for dropped entries.
        let j = EventJournal::with_capacity(8);
        for i in 0..20 {
            j.record(ObsEvent::ChunkSkipped { chunk: i });
        }
        assert_eq!(j.len(), 8);
        assert_eq!(j.dropped(), 12);
        assert_eq!(j.total_recorded(), 20);
        let entries = j.entries();
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        for e in &entries {
            match &e.event {
                ObsEvent::ChunkSkipped { chunk } => assert_eq!(*chunk, e.seq),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn concurrent_recording_assigns_unique_seqs() {
        let j = EventJournal::with_capacity(10_000);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        j.record(ObsEvent::CacheHit {
                            chunk: t * 1000 + i,
                        });
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("thread");
        }
        let mut seqs: Vec<u64> = j.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 4000);
        seqs.sort_unstable();
        assert_eq!(seqs, (0..4000).collect::<Vec<_>>());
    }

    #[test]
    fn injected_time_source_is_used() {
        let j = EventJournal::with_time_source(4, Arc::new(|| Duration::from_micros(1234)));
        j.record(ObsEvent::ReadBlocked { chunk: 9 });
        assert_eq!(j.entries()[0].at, Duration::from_micros(1234));
    }

    #[test]
    fn every_event_round_trips_through_json() {
        let events = vec![
            ObsEvent::QueryStart {
                table: "t".into(),
                columns: 3,
            },
            ObsEvent::QueryEnd {
                table: "t".into(),
                chunks: 10,
                rows: 1000,
                elapsed_micros: 42,
            },
            ObsEvent::ReadBlocked { chunk: 1 },
            ObsEvent::SpeculativeWriteTriggered { chunk: 2 },
            ObsEvent::SafeguardFlush { chunks: 3 },
            ObsEvent::WriteQueued {
                chunk: 4,
                cause: WriteCause::Eviction,
            },
            ObsEvent::CacheHit { chunk: 5 },
            ObsEvent::CacheMiss { chunk: 6 },
            ObsEvent::CacheEvict {
                chunk: 7,
                loaded: true,
            },
            ObsEvent::ChunkSkipped { chunk: 8 },
            ObsEvent::WorkerScaled { from: 2, to: 4 },
            ObsEvent::IoRetry {
                target: "db/t/col0.bin".into(),
                attempt: 2,
            },
            ObsEvent::LoadDegraded { chunk: 9 },
            ObsEvent::DbReadFallback { chunk: 10 },
            ObsEvent::ColumnCellLoaded {
                chunk: 10,
                column: 4,
            },
            ObsEvent::RecoveryCompleted {
                committed: 12,
                dropped: 3,
            },
            ObsEvent::TraceStarted {
                trace: 7,
                table: "t".into(),
            },
            ObsEvent::TraceCompleted {
                trace: 7,
                spans: 40,
            },
            ObsEvent::QueryAdmitted {
                tenant: 3,
                depth: 5,
            },
            ObsEvent::QueryRejected {
                tenant: 4,
                depth: 64,
            },
            ObsEvent::BatchFormed {
                batch: 11,
                table: "t".into(),
                queries: 4,
                tenants: 2,
            },
            ObsEvent::QueryServed {
                tenant: 3,
                batch: 11,
                latency_micros: 812,
                degraded: true,
            },
        ];
        for event in events {
            let entry = JournalEntry {
                seq: 7,
                at: Duration::from_micros(99),
                event: event.clone(),
            };
            let parsed = crate::json::parse(&entry.to_json().to_json()).expect("parse");
            let back = JournalEntry::from_json(&parsed).expect("decode");
            assert_eq!(back, entry, "event {} did not round-trip", event.kind());
        }
    }

    #[test]
    fn count_where_filters_events() {
        let j = EventJournal::with_capacity(16);
        j.record(ObsEvent::CacheHit { chunk: 1 });
        j.record(ObsEvent::CacheMiss { chunk: 2 });
        j.record(ObsEvent::CacheHit { chunk: 3 });
        assert_eq!(j.count_where(|e| matches!(e, ObsEvent::CacheHit { .. })), 2);
    }
}
