//! RAM-backed named files: the byte store underneath [`crate::SimDisk`].
//!
//! Keeping file contents in memory removes the host's real disk from the
//! experiment entirely; all timing behaviour is produced by the throttling
//! layer, which makes runs reproducible on any machine.

use parking_lot::RwLock;
use scanraw_types::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// A single file's contents behind its own lock.
type FileCell = Arc<RwLock<Vec<u8>>>;

/// A set of named in-memory files.
///
/// Cheap to clone (shared behind `Arc`); all operations are thread-safe.
#[derive(Debug, Clone, Default)]
pub struct RamStorage {
    inner: Arc<RwLock<HashMap<String, FileCell>>>,
}

impl RamStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or truncates) a file with the given contents.
    pub fn put(&self, name: &str, data: Vec<u8>) {
        self.inner
            .write()
            .insert(name.to_string(), Arc::new(RwLock::new(data)));
    }

    /// Creates an empty file if absent; returns whether it was created.
    pub fn create(&self, name: &str) -> bool {
        let mut files = self.inner.write();
        if files.contains_key(name) {
            false
        } else {
            files.insert(name.to_string(), Arc::new(RwLock::new(Vec::new())));
            true
        }
    }

    /// Removes a file; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }

    pub fn exists(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    pub fn len(&self, name: &str) -> Result<u64> {
        let f = self.handle(name)?;
        let len = f.read().len() as u64;
        Ok(len)
    }

    pub fn is_empty(&self, name: &str) -> Result<bool> {
        Ok(self.len(name)? == 0)
    }

    /// Lists file names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Reads `len` bytes at `offset`. Short files are an error — the device
    /// never returns partial reads, mirroring page-granular storage.
    pub fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let f = self.handle(name)?;
        let data = f.read();
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .ok_or_else(|| Error::io("read range overflow"))?;
        if end > data.len() {
            return Err(Error::io(format!(
                "read past end of '{name}': {end} > {}",
                data.len()
            )));
        }
        Ok(data[start..end].to_vec())
    }

    /// Writes `buf` at `offset`, extending the file with zeros if needed.
    pub fn write_at(&self, name: &str, offset: u64, buf: &[u8]) -> Result<()> {
        let f = self.handle(name)?;
        let mut data = f.write();
        let start = offset as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or_else(|| Error::io("write range overflow"))?;
        if end > data.len() {
            data.resize(end, 0);
        }
        data[start..end].copy_from_slice(buf);
        Ok(())
    }

    /// Appends `buf`, returning the offset it was written at.
    pub fn append(&self, name: &str, buf: &[u8]) -> Result<u64> {
        let f = self.handle(name)?;
        let mut data = f.write();
        let offset = data.len() as u64;
        data.extend_from_slice(buf);
        Ok(offset)
    }

    fn handle(&self, name: &str) -> Result<FileCell> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::io(format!("no such file '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_read_roundtrip() {
        let s = RamStorage::new();
        s.put("a", b"hello world".to_vec());
        assert_eq!(s.read_at("a", 6, 5).unwrap(), b"world");
        assert_eq!(s.len("a").unwrap(), 11);
    }

    #[test]
    fn read_past_end_is_error() {
        let s = RamStorage::new();
        s.put("a", vec![1, 2, 3]);
        assert!(s.read_at("a", 2, 2).is_err());
        assert!(s.read_at("a", 0, 3).is_ok());
    }

    #[test]
    fn missing_file_is_error() {
        let s = RamStorage::new();
        assert!(s.read_at("nope", 0, 1).is_err());
        assert!(s.len("nope").is_err());
    }

    #[test]
    fn write_extends_with_zeros() {
        let s = RamStorage::new();
        s.create("f");
        s.write_at("f", 4, b"xy").unwrap();
        assert_eq!(s.read_at("f", 0, 6).unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn append_returns_offsets() {
        let s = RamStorage::new();
        s.create("f");
        assert_eq!(s.append("f", b"ab").unwrap(), 0);
        assert_eq!(s.append("f", b"cd").unwrap(), 2);
        assert_eq!(s.read_at("f", 0, 4).unwrap(), b"abcd");
    }

    #[test]
    fn create_and_remove() {
        let s = RamStorage::new();
        assert!(s.create("f"));
        assert!(!s.create("f"), "second create is a no-op");
        assert!(s.exists("f"));
        assert!(s.remove("f"));
        assert!(!s.remove("f"));
        assert!(!s.exists("f"));
    }

    #[test]
    fn concurrent_appends_preserve_total_length() {
        let s = RamStorage::new();
        s.create("f");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        s.append("f", &[7u8; 16]).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.len("f").unwrap(), 4 * 100 * 16);
    }
}
