//! Device accounting: totals and a busy/idle timeline (the data behind Fig 9).

use crate::disk::AccessKind;
use parking_lot::Mutex;
use scanraw_obs::{Counter, Gauge, MetricsRegistry};
use std::sync::OnceLock;
use std::time::Duration;

/// One completed device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    pub kind: AccessKind,
    pub start: Duration,
    pub end: Duration,
    pub bytes: u64,
}

/// A point of the utilization timeline: fraction of one window the device
/// spent reading and writing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Window start, since the clock epoch.
    pub at: Duration,
    /// Fraction of the window busy with reads, in `[0, 1]`.
    pub read: f64,
    /// Fraction of the window busy with writes, in `[0, 1]`.
    pub write: f64,
}

/// Metric handles mirroring the device's accounting into a registry.
struct DiskObsHandles {
    read_bytes: Counter,
    write_bytes: Counter,
    read_ops: Counter,
    write_ops: Counter,
    /// Cumulative device-busy time per direction, in microseconds.
    read_busy_micros: Counter,
    write_busy_micros: Counter,
    /// Operations queued on or holding the single-accessor device lock.
    queue_depth: Gauge,
}

/// Thread-safe collector of [`OpRecord`]s.
#[derive(Default)]
pub struct DiskStats {
    ops: Mutex<Vec<OpRecord>>,
    obs: OnceLock<DiskObsHandles>,
}

impl DiskStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors device accounting into named metrics (`disk.read.bytes`,
    /// `disk.write.busy_micros`, `disk.queue.depth`, ...). First attachment
    /// wins; later calls are no-ops.
    pub fn attach_obs(&self, metrics: &MetricsRegistry) {
        let _ = self.obs.set(DiskObsHandles {
            read_bytes: metrics.counter("disk.read.bytes"),
            write_bytes: metrics.counter("disk.write.bytes"),
            read_ops: metrics.counter("disk.read.ops"),
            write_ops: metrics.counter("disk.write.ops"),
            read_busy_micros: metrics.counter("disk.read.busy_micros"),
            write_busy_micros: metrics.counter("disk.write.busy_micros"),
            queue_depth: metrics.gauge("disk.queue.depth"),
        });
    }

    /// An accessor started waiting for (or holding) the device.
    pub(crate) fn queue_enter(&self) {
        if let Some(h) = self.obs.get() {
            h.queue_depth.add(1);
        }
    }

    /// An accessor finished its device operation.
    pub(crate) fn queue_exit(&self) {
        if let Some(h) = self.obs.get() {
            h.queue_depth.sub(1);
        }
    }

    pub fn record(&self, op: OpRecord) {
        if let Some(h) = self.obs.get() {
            let busy = op.end.saturating_sub(op.start).as_micros() as u64;
            match op.kind {
                AccessKind::Read => {
                    h.read_bytes.add(op.bytes);
                    h.read_ops.inc();
                    h.read_busy_micros.add(busy);
                }
                AccessKind::Write => {
                    h.write_bytes.add(op.bytes);
                    h.write_ops.inc();
                    h.write_busy_micros.add(busy);
                }
            }
        }
        self.ops.lock().push(op);
    }

    pub fn clear(&self) {
        self.ops.lock().clear();
    }

    /// Total bytes moved in the given direction.
    pub fn bytes(&self, kind: AccessKind) -> u64 {
        self.ops
            .lock()
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.bytes)
            .sum()
    }

    /// Total device-busy time in the given direction.
    pub fn busy(&self, kind: AccessKind) -> Duration {
        self.ops
            .lock()
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.end.saturating_sub(o.start))
            .sum()
    }

    pub fn op_count(&self) -> usize {
        self.ops.lock().len()
    }

    /// Snapshot of all recorded operations, in completion order.
    pub fn ops(&self) -> Vec<OpRecord> {
        self.ops.lock().clone()
    }

    /// Busy fraction per `window`, from the first op start to the last op end.
    ///
    /// This is the series Figure 9 plots (I/O utilization vs progress): a
    /// window fully covered by read operations yields `read = 1.0`.
    pub fn utilization_timeline(&self, window: Duration) -> Vec<UtilizationSample> {
        assert!(!window.is_zero(), "window must be positive");
        let ops = self.ops.lock();
        if ops.is_empty() {
            return Vec::new();
        }
        // The emptiness check above guarantees min/max exist; fall back to
        // an empty timeline rather than panicking if that ever changes.
        let (Some(t0), Some(t1)) = (
            ops.iter().map(|o| o.start).min(),
            ops.iter().map(|o| o.end).max(),
        ) else {
            return Vec::new();
        };
        let n = ((t1 - t0).as_nanos() / window.as_nanos()) as usize + 1;
        let mut read_busy = vec![Duration::ZERO; n];
        let mut write_busy = vec![Duration::ZERO; n];
        for op in ops.iter() {
            // Spread the op's busy time over every window it overlaps.
            let mut cur = op.start;
            while cur < op.end {
                let idx = ((cur - t0).as_nanos() / window.as_nanos()) as usize;
                let win_end = t0 + window * (idx as u32 + 1);
                let seg_end = op.end.min(win_end);
                let seg = seg_end - cur;
                match op.kind {
                    AccessKind::Read => read_busy[idx] += seg,
                    AccessKind::Write => write_busy[idx] += seg,
                }
                cur = seg_end;
            }
        }
        (0..n)
            .map(|i| UtilizationSample {
                at: t0 + window * i as u32,
                read: read_busy[i].as_secs_f64() / window.as_secs_f64(),
                write: write_busy[i].as_secs_f64() / window.as_secs_f64(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: AccessKind, start_ms: u64, end_ms: u64, bytes: u64) -> OpRecord {
        OpRecord {
            kind,
            start: Duration::from_millis(start_ms),
            end: Duration::from_millis(end_ms),
            bytes,
        }
    }

    #[test]
    fn totals_by_kind() {
        let s = DiskStats::new();
        s.record(op(AccessKind::Read, 0, 10, 100));
        s.record(op(AccessKind::Write, 10, 30, 50));
        s.record(op(AccessKind::Read, 30, 35, 25));
        assert_eq!(s.bytes(AccessKind::Read), 125);
        assert_eq!(s.bytes(AccessKind::Write), 50);
        assert_eq!(s.busy(AccessKind::Read), Duration::from_millis(15));
        assert_eq!(s.busy(AccessKind::Write), Duration::from_millis(20));
        assert_eq!(s.op_count(), 3);
    }

    #[test]
    fn timeline_fully_busy_window() {
        let s = DiskStats::new();
        s.record(op(AccessKind::Read, 0, 100, 1));
        let tl = s.utilization_timeline(Duration::from_millis(50));
        assert_eq!(tl.len(), 3); // windows [0,50) [50,100) [100,150)
        assert!((tl[0].read - 1.0).abs() < 1e-9);
        assert!((tl[1].read - 1.0).abs() < 1e-9);
        assert_eq!(tl[0].write, 0.0);
    }

    #[test]
    fn timeline_alternating_read_write() {
        let s = DiskStats::new();
        s.record(op(AccessKind::Read, 0, 50, 1));
        s.record(op(AccessKind::Write, 50, 100, 1));
        let tl = s.utilization_timeline(Duration::from_millis(100));
        assert!((tl[0].read - 0.5).abs() < 1e-9);
        assert!((tl[0].write - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline() {
        let s = DiskStats::new();
        assert!(s.utilization_timeline(Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn attached_registry_mirrors_ops() {
        let s = DiskStats::new();
        let metrics = MetricsRegistry::new();
        s.attach_obs(&metrics);
        s.queue_enter();
        assert_eq!(metrics.gauge_value("disk.queue.depth"), Some(1));
        s.record(op(AccessKind::Read, 0, 10, 100));
        s.queue_exit();
        s.queue_enter();
        s.record(op(AccessKind::Write, 10, 30, 50));
        s.queue_exit();
        assert_eq!(metrics.counter_value("disk.read.bytes"), Some(100));
        assert_eq!(metrics.counter_value("disk.write.bytes"), Some(50));
        assert_eq!(metrics.counter_value("disk.read.ops"), Some(1));
        assert_eq!(metrics.counter_value("disk.write.ops"), Some(1));
        assert_eq!(metrics.counter_value("disk.read.busy_micros"), Some(10_000));
        assert_eq!(
            metrics.counter_value("disk.write.busy_micros"),
            Some(20_000)
        );
        assert_eq!(metrics.gauge_value("disk.queue.depth"), Some(0));
    }

    #[test]
    fn clear_resets() {
        let s = DiskStats::new();
        s.record(op(AccessKind::Read, 0, 1, 1));
        s.clear();
        assert_eq!(s.op_count(), 0);
        assert_eq!(s.bytes(AccessKind::Read), 0);
    }
}
