//! Pluggable time source for the simulated device.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock that can also pass time.
///
/// `SimDisk` charges I/O cost by calling [`Clock::sleep`]; swapping the clock
/// changes whether that cost is paid in wall-clock time ([`RealClock`], used
/// by the live multithreaded operator) or in bookkeeping only
/// ([`VirtualClock`], used by unit tests).
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
    /// Blocks the caller (really or virtually) for `d`.
    fn sleep(&self, d: Duration);
}

/// Shared handle to a clock implementation.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time; `sleep` parks the calling thread.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        RealClock {
            // effect-ok: RealClock is the wall-clock implementation; SimClock is the deterministic one
            epoch: Instant::now(),
        }
    }

    /// Convenience constructor returning a shared handle.
    pub fn shared() -> SharedClock {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Virtual time: `sleep` advances a counter instead of parking.
///
/// Deterministic and free; exact for single-threaded use (unit tests and the
/// calibration harness). Multi-threaded callers still get consistent totals —
/// each sleep advances the global clock atomically — but not a faithful
/// parallel schedule; the discrete-event simulator in `scanraw-pipesim` exists
/// for that.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Mutex<Duration>,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn shared() -> SharedClock {
        Arc::new(VirtualClock::new())
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }

    fn sleep(&self, d: Duration) {
        let mut now = self.now.lock();
        *now += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_on_sleep() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.sleep(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
        c.sleep(Duration::ZERO);
        assert_eq!(c.now(), Duration::from_millis(250));
    }

    #[test]
    fn real_clock_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        c.sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a + Duration::from_millis(2));
    }

    #[test]
    fn shared_handles_are_object_safe() {
        let clocks: Vec<SharedClock> = vec![VirtualClock::shared(), RealClock::shared()];
        for c in clocks {
            c.sleep(Duration::from_micros(1));
            let _ = c.now();
        }
    }
}
