//! Simulated storage device for the ScanRaw reproduction.
//!
//! The paper's testbed is a 4-disk RAID-0 array with ~436 MB/s average read
//! throughput. We do not have that hardware, so this crate provides a
//! deterministic substitute: RAM-backed files ([`ramfile`]) behind a
//! bandwidth-throttled device ([`disk::SimDisk`]) that
//!
//! * charges `bytes / bandwidth` of (real or virtual) time per operation,
//! * enforces single-accessor semantics — READ and WRITE contend for the same
//!   device, and switching direction pays a seek penalty, which is exactly the
//!   interference the ScanRaw scheduler exists to avoid (paper §3.2),
//! * models the OS page cache — re-reads of cached ranges run at the (much
//!   higher) cached bandwidth, matching the paper's methodology of dropping
//!   caches before cold runs (§5),
//! * records a complete utilization timeline (who was busy when), which is
//!   what Figure 9 plots.
//!
//! Time comes from a pluggable [`clock::Clock`] so unit tests can run on a
//! virtual clock with zero wall-clock cost.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod clock;
pub mod disk;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod ramfile;
pub mod stats;

pub use clock::{Clock, RealClock, SharedClock, VirtualClock};
pub use disk::{AccessKind, DiskConfig, SimDisk};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultConfig, FaultCounters, FaultPlan};
pub use ramfile::RamStorage;
pub use stats::{DiskStats, UtilizationSample};
