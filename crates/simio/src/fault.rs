//! Seeded fault injection for [`SimDisk`] (feature `fault-inject`).
//!
//! A [`FaultPlan`] is a deterministic stream of per-operation decisions drawn
//! from a SplitMix64 generator (the same mixer as the schedule-stress harness
//! of crates/core/tests/schedule_stress.rs). Installed on a disk via
//! [`SimDisk::set_fault_plan`], it can make any `read`/`write_at`/`append`
//! fail with a typed [`scanraw_types::IoError`], tear a write short, flip a
//! bit in the bytes a read returns, or add a latency spike — with per-file
//! (substring) targeting and per-op-count triggers (a permanent failure
//! threshold and a whole-device crash point).
//!
//! Two properties keep seeded test suites meaningful:
//!
//! * **Bounded unfairness** — at most [`FaultConfig::max_consecutive`]
//!   consecutive injected failures per file, so a retry budget of
//!   `max_consecutive + 1` attempts is guaranteed to succeed (absent a
//!   permanent trigger). Without the cap, oracle-equality assertions would be
//!   probabilistic rather than invariant.
//! * **Silent corruption stays detectable** — bit flips and torn writes are
//!   restricted to files matching [`FaultConfig::corrupt_target`]
//!   (default `db/`, the checksummed binary store), never the raw input, so
//!   injected corruption can change *performance*, never *results*.
//!
//! [`SimDisk`]: crate::disk::SimDisk
//! [`SimDisk::set_fault_plan`]: crate::disk::SimDisk::set_fault_plan

use crate::disk::AccessKind;
use scanraw_types::Error;
use std::collections::HashMap;
use std::time::Duration;

/// SplitMix64 — mirrors the stress-harness generator so fault schedules and
/// thread schedules share one seeding idiom.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// What a [`FaultPlan`] may do to device operations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision stream; same seed + same op sequence = same faults.
    pub seed: u64,
    /// Probability a matching op fails with a transient error.
    pub p_transient: f64,
    /// Probability a matching write is torn: a random prefix reaches storage,
    /// the op reports a transient "short write" error.
    pub p_torn: f64,
    /// Probability one bit is flipped in the bytes a matching read *returns*
    /// (stored bytes stay intact — read-path corruption).
    pub p_bitflip: f64,
    /// Probability a matching op is delayed by [`latency_spike`].
    ///
    /// [`latency_spike`]: FaultConfig::latency_spike
    pub p_latency: f64,
    /// Extra (virtual) latency added on a latency-spike draw.
    pub latency_spike: Duration,
    /// Only files whose name contains this substring are faulted at all
    /// (empty = every file).
    pub target: String,
    /// Torn writes and bit flips are additionally restricted to files
    /// matching this substring. Default `db/`: the binary store is
    /// checksummed, so injected corruption is always detectable and can
    /// never silently change query results.
    pub corrupt_target: String,
    /// Cap on consecutive injected failures per file; bounds the attempts a
    /// retry loop needs to `max_consecutive + 1`.
    pub max_consecutive: u32,
    /// After this many *matching* ops, every further matching op fails
    /// permanently (a dead device region).
    pub permanent_after: Option<u64>,
    /// Whole-device crash at this op count (counting every op): the in-flight
    /// write is torn with no error-path warning to the caller's protocol —
    /// a permanent error — and all later ops fail permanently until the plan
    /// is cleared (modeling a restart).
    pub crash_at_op: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            p_transient: 0.0,
            p_torn: 0.0,
            p_bitflip: 0.0,
            p_latency: 0.0,
            latency_spike: Duration::from_millis(5),
            target: String::new(),
            corrupt_target: "db/".into(),
            max_consecutive: 3,
            permanent_after: None,
            crash_at_op: None,
        }
    }
}

impl FaultConfig {
    /// A plan seeded for general mayhem at the given rates.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Tallies of what a plan actually injected — read back by tests via
/// [`FaultPlan::counters`] to assert a schedule exercised the paths it meant
/// to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultCounters {
    pub transient: u64,
    pub torn: u64,
    pub bitflip: u64,
    pub permanent: u64,
    pub latency_spikes: u64,
    pub crashes: u64,
}

/// Per-op fault decision handed to the disk.
#[derive(Debug)]
pub(crate) struct Decision {
    pub(crate) extra_latency: Duration,
    pub(crate) outcome: Outcome,
}

#[derive(Debug)]
pub(crate) enum Outcome {
    /// Execute the operation normally.
    Proceed,
    /// Fail without touching storage.
    Fail(Error),
    /// Write only the first `keep` bytes, then report `error`.
    Torn { keep: usize, error: Error },
    /// Read normally, then flip `mask` in byte `byte` of the returned buffer.
    BitFlip { byte: usize, mask: u8 },
}

impl Decision {
    pub(crate) fn clean() -> Self {
        Decision {
            extra_latency: Duration::ZERO,
            outcome: Outcome::Proceed,
        }
    }

    fn fail(error: Error) -> Self {
        Decision {
            extra_latency: Duration::ZERO,
            outcome: Outcome::Fail(error),
        }
    }
}

/// Live fault-decision state installed on a [`SimDisk`].
///
/// [`SimDisk`]: crate::disk::SimDisk
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Rng,
    /// Every op seen (crash trigger counts these).
    ops: u64,
    /// Ops on files matching `cfg.target` (permanent trigger counts these).
    matching_ops: u64,
    /// Consecutive injected failures per file, reset by a clean op.
    consecutive: HashMap<String, u32>,
    crashed: bool,
    counters: FaultCounters,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = Rng(cfg.seed);
        FaultPlan {
            cfg,
            rng,
            ops: 0,
            matching_ops: 0,
            consecutive: HashMap::new(),
            crashed: false,
            counters: FaultCounters::default(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// What this plan has injected so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// True once the crash trigger fired (every later op fails permanently).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Total device ops observed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.unit() < p
    }

    pub(crate) fn decide(&mut self, kind: AccessKind, file: &str, len: usize) -> Decision {
        self.ops += 1;

        if self.crashed {
            return Decision::fail(Error::io_permanent(file, "device crashed"));
        }
        if let Some(at) = self.cfg.crash_at_op {
            if self.ops >= at {
                self.crashed = true;
                self.counters.crashes += 1;
                if kind == AccessKind::Write && len > 0 {
                    // The op straddling the crash point is torn mid-transfer:
                    // a prefix reaches the platter, the caller sees a dead
                    // device. Write-then-commit recovery must catch this.
                    let keep = self.rng.below(len);
                    self.counters.torn += 1;
                    return Decision {
                        extra_latency: Duration::ZERO,
                        outcome: Outcome::Torn {
                            keep,
                            error: Error::io_permanent(file, "device crashed mid-write"),
                        },
                    };
                }
                return Decision::fail(Error::io_permanent(file, "device crashed"));
            }
        }

        if !self.cfg.target.is_empty() && !file.contains(&self.cfg.target) {
            return Decision::clean();
        }
        self.matching_ops += 1;

        if let Some(after) = self.cfg.permanent_after {
            if self.matching_ops > after {
                self.counters.permanent += 1;
                return Decision::fail(Error::io_permanent(file, "injected permanent failure"));
            }
        }

        let mut decision = Decision::clean();
        if self.roll(self.cfg.p_latency) {
            decision.extra_latency = self.cfg.latency_spike;
            self.counters.latency_spikes += 1;
        }

        let streak = self.consecutive.entry(file.to_string()).or_insert(0);
        let may_fault = *streak < self.cfg.max_consecutive;
        let corruptible =
            self.cfg.corrupt_target.is_empty() || file.contains(&self.cfg.corrupt_target);

        if may_fault && self.roll(self.cfg.p_transient) {
            *self.consecutive.entry(file.to_string()).or_insert(0) += 1;
            self.counters.transient += 1;
            decision.outcome = Outcome::Fail(Error::io_transient(file, "injected transient error"));
            return decision;
        }
        if kind == AccessKind::Write
            && may_fault
            && corruptible
            && len > 0
            && self.roll(self.cfg.p_torn)
        {
            let keep = self.rng.below(len);
            *self.consecutive.entry(file.to_string()).or_insert(0) += 1;
            self.counters.torn += 1;
            decision.outcome = Outcome::Torn {
                keep,
                error: Error::io_transient(
                    file,
                    format!("torn write: {keep} of {len} bytes reached storage"),
                ),
            };
            return decision;
        }
        if kind == AccessKind::Read
            && may_fault
            && corruptible
            && len > 0
            && self.roll(self.cfg.p_bitflip)
        {
            let byte = self.rng.below(len);
            let mask = 1u8 << (self.rng.next() % 8);
            *self.consecutive.entry(file.to_string()).or_insert(0) += 1;
            self.counters.bitflip += 1;
            decision.outcome = Outcome::BitFlip { byte, mask };
            return decision;
        }

        self.consecutive.insert(file.to_string(), 0);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always() -> FaultConfig {
        FaultConfig {
            seed: 7,
            p_transient: 1.0,
            max_consecutive: 2,
            ..Default::default()
        }
    }

    #[test]
    fn consecutive_cap_bounds_failure_streaks() {
        let mut plan = FaultPlan::new(always());
        let mut failures = 0;
        for _ in 0..3 {
            match plan.decide(AccessKind::Read, "f", 64).outcome {
                Outcome::Fail(e) => {
                    assert!(e.is_retryable());
                    failures += 1;
                }
                Outcome::Proceed => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(failures, 2, "cap of 2 must stop the streak");
        // The loop's clean op reset the streak: faults resume, capped again.
        assert!(matches!(
            plan.decide(AccessKind::Read, "f", 64).outcome,
            Outcome::Fail(_)
        ));
        assert!(matches!(
            plan.decide(AccessKind::Read, "f", 64).outcome,
            Outcome::Fail(_)
        ));
        assert!(matches!(
            plan.decide(AccessKind::Read, "f", 64).outcome,
            Outcome::Proceed
        ));
    }

    #[test]
    fn target_substring_scopes_faults() {
        let cfg = FaultConfig {
            target: "db/".into(),
            ..always()
        };
        let mut plan = FaultPlan::new(cfg);
        assert!(matches!(
            plan.decide(AccessKind::Read, "input.csv", 64).outcome,
            Outcome::Proceed
        ));
        assert!(matches!(
            plan.decide(AccessKind::Read, "db/t/col0.bin", 64).outcome,
            Outcome::Fail(_)
        ));
    }

    #[test]
    fn corruption_restricted_to_corrupt_target() {
        let cfg = FaultConfig {
            seed: 11,
            p_bitflip: 1.0,
            p_torn: 1.0,
            ..Default::default()
        };
        let mut plan = FaultPlan::new(cfg);
        // Raw file: never corrupted.
        assert!(matches!(
            plan.decide(AccessKind::Read, "input.csv", 64).outcome,
            Outcome::Proceed
        ));
        assert!(matches!(
            plan.decide(AccessKind::Write, "input.csv", 64).outcome,
            Outcome::Proceed
        ));
        // Binary store: fair game.
        assert!(matches!(
            plan.decide(AccessKind::Read, "db/t/col0.bin", 64).outcome,
            Outcome::BitFlip { .. }
        ));
        assert!(matches!(
            plan.decide(AccessKind::Write, "db/t/col1.bin", 64).outcome,
            Outcome::Torn { .. }
        ));
    }

    #[test]
    fn crash_kills_the_device_and_tears_inflight_write() {
        let cfg = FaultConfig {
            crash_at_op: Some(3),
            ..FaultConfig::seeded(5)
        };
        let mut plan = FaultPlan::new(cfg);
        assert!(matches!(
            plan.decide(AccessKind::Read, "f", 8).outcome,
            Outcome::Proceed
        ));
        assert!(matches!(
            plan.decide(AccessKind::Read, "f", 8).outcome,
            Outcome::Proceed
        ));
        match plan.decide(AccessKind::Write, "db/t/col0.bin", 100).outcome {
            Outcome::Torn { keep, error } => {
                assert!(keep < 100);
                assert!(!error.is_retryable());
            }
            other => panic!("expected torn crash write, got {other:?}"),
        }
        assert!(plan.crashed());
        // Everything afterwards fails permanently.
        match plan.decide(AccessKind::Read, "f", 8).outcome {
            Outcome::Fail(e) => assert!(!e.is_retryable()),
            other => panic!("expected permanent failure, got {other:?}"),
        }
        assert_eq!(plan.counters().crashes, 1);
    }

    #[test]
    fn permanent_after_threshold_on_matching_ops() {
        let cfg = FaultConfig {
            target: "db/".into(),
            permanent_after: Some(1),
            ..FaultConfig::seeded(9)
        };
        let mut plan = FaultPlan::new(cfg);
        assert!(matches!(
            plan.decide(AccessKind::Write, "db/t/col0.bin", 8).outcome,
            Outcome::Proceed
        ));
        // Non-matching ops never count against the threshold.
        for _ in 0..4 {
            assert!(matches!(
                plan.decide(AccessKind::Read, "input.csv", 8).outcome,
                Outcome::Proceed
            ));
        }
        match plan.decide(AccessKind::Write, "db/t/col0.bin", 8).outcome {
            Outcome::Fail(e) => assert!(!e.is_retryable()),
            other => panic!("expected permanent failure, got {other:?}"),
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig {
            p_transient: 0.5,
            p_bitflip: 0.3,
            p_torn: 0.3,
            max_consecutive: 100,
            ..FaultConfig::seeded(42)
        };
        let run = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            let mut trace = Vec::new();
            for i in 0..200 {
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let d = plan.decide(kind, "db/t/col0.bin", 64);
                trace.push(format!("{:?}", d.outcome));
            }
            (trace, plan.counters().clone())
        };
        let (t1, c1) = run(cfg.clone());
        let (t2, c2) = run(cfg);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert!(
            c1.transient + c1.bitflip + c1.torn > 0,
            "plan injected nothing"
        );
    }
}
