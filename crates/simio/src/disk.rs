//! The throttled, arbitrated device: [`SimDisk`].
//!
//! All ScanRaw I/O — reading the raw file and writing binary chunks into the
//! database — goes through one `SimDisk`, because on the paper's testbed both
//! hit the same RAID array. The device:
//!
//! * serializes operations (one accessor at a time — "ScanRaw has to enforce
//!   that only one of READ or WRITE accesses the disk at any particular
//!   instant", §3.2.1);
//! * charges a direction-switch *seek penalty*, so interleaving reads and
//!   writes is strictly worse than batching them — the cost the scheduler's
//!   arbitration avoids;
//! * serves re-reads of recently accessed ranges from a modeled OS page cache
//!   at a higher bandwidth (paper §2 READ, §5 methodology).

use crate::clock::SharedClock;
#[cfg(feature = "fault-inject")]
use crate::fault::{Decision, FaultPlan, Outcome};
use crate::ramfile::RamStorage;
use crate::stats::{DiskStats, OpRecord};
use parking_lot::Mutex;
use scanraw_types::Result;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Direction of a device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

/// Device parameters.
///
/// Defaults mirror the paper's storage system scaled for test runs: 436 MB/s
/// average read, 3 GB/s cached read (§5 "System"). Write bandwidth is set
/// equal to read bandwidth (RAID-0 of identical drives).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    pub read_bw: u64,
    pub write_bw: u64,
    /// Bandwidth for reads served by the page-cache model.
    pub cached_read_bw: u64,
    /// Extra latency when the device switches between reading and writing.
    pub seek_latency: Duration,
    /// Page-cache capacity in bytes (0 disables the cache model).
    pub page_cache_bytes: u64,
    /// Page granularity of the cache model.
    pub page_bytes: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            read_bw: 436 * 1024 * 1024,
            write_bw: 436 * 1024 * 1024,
            cached_read_bw: 3 * 1024 * 1024 * 1024,
            seek_latency: Duration::from_millis(5),
            page_cache_bytes: 256 * 1024 * 1024,
            page_bytes: 256 * 1024,
        }
    }
}

impl DiskConfig {
    /// A fast configuration for unit tests: high bandwidths, no seek penalty,
    /// so real-clock tests finish in microseconds.
    pub fn instant() -> Self {
        DiskConfig {
            read_bw: u64::MAX / 4,
            write_bw: u64::MAX / 4,
            cached_read_bw: u64::MAX / 4,
            seek_latency: Duration::ZERO,
            page_cache_bytes: 0,
            page_bytes: 256 * 1024,
        }
    }
}

/// LRU page cache model: tracks *which* (file, page) ranges are resident; the
/// bytes themselves live in [`RamStorage`] either way.
#[derive(Debug, Default)]
struct PageCacheModel {
    /// Resident pages; value is unused, order kept in `lru`.
    resident: HashMap<(String, u64), ()>,
    /// Least-recently-used page queue (front = coldest).
    lru: VecDeque<(String, u64)>,
    bytes: u64,
}

impl PageCacheModel {
    fn touch(&mut self, key: (String, u64), page_bytes: u64, capacity: u64) {
        if self.resident.contains_key(&key) {
            // Refresh recency.
            if let Some(pos) = self.lru.iter().position(|k| *k == key) {
                self.lru.remove(pos);
            }
            self.lru.push_back(key);
            return;
        }
        self.resident.insert(key.clone(), ());
        self.lru.push_back(key);
        self.bytes += page_bytes;
        while self.bytes > capacity {
            match self.lru.pop_front() {
                Some(cold) => {
                    self.resident.remove(&cold);
                    self.bytes -= page_bytes;
                }
                None => break,
            }
        }
    }

    fn contains(&self, key: &(String, u64)) -> bool {
        self.resident.contains_key(key)
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.lru.clear();
        self.bytes = 0;
    }
}

struct DiskInner {
    /// Held for the duration of each operation → single accessor.
    /// Also remembers the direction of the previous operation for the seek
    /// penalty model.
    last_kind: Option<AccessKind>,
    cache: PageCacheModel,
}

/// Bandwidth-throttled, single-accessor storage device over [`RamStorage`].
///
/// Cheap to clone; clones share the same device state.
#[derive(Clone)]
pub struct SimDisk {
    storage: RamStorage,
    cfg: DiskConfig,
    clock: SharedClock,
    inner: Arc<Mutex<DiskInner>>,
    stats: Arc<DiskStats>,
    /// Span recorder for per-operation `disk.read`/`disk.write` spans; set by
    /// [`SimDisk::attach_trace`], shared across clones. A leaf lock, taken
    /// only briefly and never while `inner` is held.
    trace: Arc<Mutex<Option<scanraw_obs::SpanRecorder>>>,
    #[cfg(feature = "fault-inject")]
    fault: Arc<Mutex<Option<FaultPlan>>>,
}

impl SimDisk {
    pub fn new(cfg: DiskConfig, clock: SharedClock) -> Self {
        SimDisk {
            storage: RamStorage::new(),
            cfg,
            clock,
            inner: Arc::new(Mutex::new(DiskInner {
                last_kind: None,
                cache: PageCacheModel::default(),
            })),
            stats: Arc::new(DiskStats::new()),
            trace: Arc::new(Mutex::new(None)),
            #[cfg(feature = "fault-inject")]
            fault: Arc::new(Mutex::new(None)),
        }
    }

    /// Device with [`DiskConfig::instant`] and a virtual clock — for tests.
    pub fn instant() -> Self {
        SimDisk::new(DiskConfig::instant(), crate::clock::VirtualClock::shared())
    }

    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Mirrors device accounting (bytes, ops, busy time, queue depth) into
    /// named metrics. Delegates to [`DiskStats::attach_obs`]; the first
    /// registry attached wins.
    pub fn attach_obs(&self, metrics: &scanraw_obs::MetricsRegistry) {
        self.stats.attach_obs(metrics);
    }

    /// Attaches a span recorder: every subsequent `read`/`write_at` records a
    /// `disk.read`/`disk.write` span under the calling thread's current span
    /// context (no-op on threads without one). Replaces any previous recorder.
    pub fn attach_trace(&self, recorder: &scanraw_obs::SpanRecorder) {
        *self.trace.lock() = Some(recorder.clone());
    }

    /// Opens a device-op span under the caller's ambient span context, if a
    /// recorder is attached and a context is set.
    fn op_span(
        &self,
        name: &'static str,
        file: &str,
        bytes: usize,
    ) -> Option<scanraw_obs::trace::SpanGuard> {
        let recorder = self.trace.lock().clone()?;
        recorder.enter_current(
            name,
            vec![("file", file.to_string()), ("bytes", bytes.to_string())],
        )
    }

    /// Direct access to the backing store, bypassing throttling. Used to stage
    /// input files (data generation is not part of the measured experiment).
    pub fn storage(&self) -> &RamStorage {
        &self.storage
    }

    /// Empties the page-cache model — the paper's "cleaning the file system
    /// buffers before execution" (§5 Methodology).
    pub fn drop_caches(&self) {
        self.inner.lock().cache.clear();
    }

    /// Installs a fault plan; every subsequent `read`/`write_at`/`append`
    /// consults it. Replaces any previous plan.
    #[cfg(feature = "fault-inject")]
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(plan);
    }

    /// Removes the installed fault plan (modeling a device repair/restart)
    /// and returns it so tests can inspect its injection counters.
    #[cfg(feature = "fault-inject")]
    pub fn clear_fault_plan(&self) -> Option<FaultPlan> {
        self.fault.lock().take()
    }

    /// Snapshot of the installed plan's injection counters, if any.
    #[cfg(feature = "fault-inject")]
    pub fn fault_counters(&self) -> Option<crate::fault::FaultCounters> {
        self.fault.lock().as_ref().map(|p| p.counters().clone())
    }

    /// One fault decision per device op. Never called with `inner` held —
    /// the fault mutex is a leaf lock.
    #[cfg(feature = "fault-inject")]
    fn fault_decision(&self, kind: AccessKind, name: &str, len: usize) -> Decision {
        match self.fault.lock().as_mut() {
            Some(plan) => plan.decide(kind, name, len),
            None => Decision::clean(),
        }
    }

    pub fn exists(&self, name: &str) -> bool {
        self.storage.exists(name)
    }

    pub fn len(&self, name: &str) -> Result<u64> {
        self.storage.len(name)
    }

    /// Throttled read of `len` bytes at `offset`.
    ///
    /// Splits the range into cached and uncached pages, charges each share at
    /// the corresponding bandwidth, then marks the pages resident.
    pub fn read(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        // Opened before the device lock so the span covers queueing time too.
        let _span = self.op_span("disk.read", name, len);
        #[cfg(feature = "fault-inject")]
        let decision = self.fault_decision(AccessKind::Read, name, len);
        // Compute cache hit/miss split and the seek penalty under the device
        // lock, and hold the lock while time passes: single accessor.
        self.stats.queue_enter();
        let mut inner = self.inner.lock();
        let (hit_bytes, miss_bytes) = self.classify_and_touch(&mut inner, name, offset, len as u64);
        let mut cost = Duration::ZERO;
        if inner.last_kind == Some(AccessKind::Write) && miss_bytes > 0 {
            cost += self.cfg.seek_latency;
        }
        if miss_bytes > 0 {
            inner.last_kind = Some(AccessKind::Read);
        }
        cost += bytes_over_bw(miss_bytes, self.cfg.read_bw);
        cost += bytes_over_bw(hit_bytes, self.cfg.cached_read_bw);
        #[cfg(feature = "fault-inject")]
        {
            cost += decision.extra_latency;
        }

        let start = self.clock.now();
        // The device mutex is the simulated device queue: latency is charged
        // while holding it so concurrent requests serialize, which is exactly
        // the single-spindle behavior being modeled.
        // unblock-ok: intentional sleep under the device lock (see above)
        self.clock.sleep(cost);
        let end = self.clock.now();
        #[cfg(feature = "fault-inject")]
        if let Outcome::Fail(e) = decision.outcome {
            self.stats.queue_exit();
            return Err(e);
        }
        let data = self.storage.read_at(name, offset, len);
        #[cfg(feature = "fault-inject")]
        let data = match (data, decision.outcome) {
            (Ok(mut bytes), Outcome::BitFlip { byte, mask }) => {
                // Read-path corruption: the returned buffer is damaged, the
                // stored bytes are not.
                if let Some(b) = bytes.get_mut(byte) {
                    *b ^= mask;
                }
                Ok(bytes)
            }
            (data, _) => data,
        };
        self.stats.record(OpRecord {
            kind: AccessKind::Read,
            start,
            end,
            bytes: len as u64,
        });
        self.stats.queue_exit();
        data
    }

    /// Throttled positional write (write-through; pages become resident).
    pub fn write_at(&self, name: &str, offset: u64, buf: &[u8]) -> Result<()> {
        let _span = self.op_span("disk.write", name, buf.len());
        #[cfg(feature = "fault-inject")]
        let decision = self.fault_decision(AccessKind::Write, name, buf.len());
        self.stats.queue_enter();
        let mut inner = self.inner.lock();
        let mut cost = Duration::ZERO;
        if inner.last_kind == Some(AccessKind::Read) {
            cost += self.cfg.seek_latency;
        }
        inner.last_kind = Some(AccessKind::Write);
        cost += bytes_over_bw(buf.len() as u64, self.cfg.write_bw);
        self.classify_and_touch(&mut inner, name, offset, buf.len() as u64);
        #[cfg(feature = "fault-inject")]
        {
            cost += decision.extra_latency;
        }

        let start = self.clock.now();
        // The device mutex is the simulated device queue: latency is charged
        // while holding it so concurrent requests serialize, which is exactly
        // the single-spindle behavior being modeled.
        // unblock-ok: intentional sleep under the device lock (see above)
        self.clock.sleep(cost);
        let end = self.clock.now();
        #[cfg(feature = "fault-inject")]
        match decision.outcome {
            Outcome::Fail(e) => {
                self.stats.queue_exit();
                return Err(e);
            }
            Outcome::Torn { keep, error } => {
                // A prefix reaches storage; the caller sees an error. Retried
                // appends recompute their offset, so torn bytes become dead
                // space guarded by the commit protocol's checksums.
                // The partial prefix is best-effort torn-write modeling; a
                // second failure here just means a shorter (still torn)
                // prefix, and the caller receives `error` for the whole op.
                // lint-ok: L017 torn-write prefix is best-effort, caller sees the error
                let _ = self.storage.write_at(name, offset, &buf[..keep]);
                self.stats.queue_exit();
                return Err(error);
            }
            Outcome::Proceed | Outcome::BitFlip { .. } => {}
        }
        let result = self.storage.write_at(name, offset, buf);
        self.stats.record(OpRecord {
            kind: AccessKind::Write,
            start,
            end,
            bytes: buf.len() as u64,
        });
        self.stats.queue_exit();
        result
    }

    /// Throttled append; returns the offset written at.
    pub fn append(&self, name: &str, buf: &[u8]) -> Result<u64> {
        let offset = self.storage.len(name)?;
        self.write_at(name, offset, buf)?;
        Ok(offset)
    }

    /// Creates an empty file (no throttling — metadata operation).
    pub fn create(&self, name: &str) -> bool {
        self.storage.create(name)
    }

    /// Splits `[offset, offset+len)` into cached/uncached bytes by page, and
    /// marks every page of the range resident.
    fn classify_and_touch(
        &self,
        inner: &mut DiskInner,
        name: &str,
        offset: u64,
        len: u64,
    ) -> (u64, u64) {
        if self.cfg.page_cache_bytes == 0 || len == 0 {
            return (0, len);
        }
        let pb = self.cfg.page_bytes;
        let first = offset / pb;
        let last = (offset + len - 1) / pb;
        let mut hit = 0u64;
        let mut miss = 0u64;
        for page in first..=last {
            let page_start = page * pb;
            let page_end = page_start + pb;
            let span = (offset + len).min(page_end) - offset.max(page_start);
            let key = (name.to_string(), page);
            if inner.cache.contains(&key) {
                hit += span;
            } else {
                miss += span;
            }
            inner.cache.touch(key, pb, self.cfg.page_cache_bytes);
        }
        (hit, miss)
    }
}

fn bytes_over_bw(bytes: u64, bw: u64) -> Duration {
    if bytes == 0 || bw == 0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(bytes as f64 / bw as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn throttled_disk() -> SimDisk {
        let cfg = DiskConfig {
            read_bw: 1000, // 1000 B/s → 1 ms per byte
            write_bw: 500, // 2 ms per byte
            cached_read_bw: 100_000,
            seek_latency: Duration::from_millis(10),
            page_cache_bytes: 4096,
            page_bytes: 1024,
        };
        SimDisk::new(cfg, VirtualClock::shared())
    }

    #[test]
    fn cold_read_charged_at_disk_bandwidth() {
        let d = throttled_disk();
        d.storage().put("f", vec![0u8; 2000]);
        let t0 = d.clock().now();
        d.read("f", 0, 1000).unwrap();
        let elapsed = d.clock().now() - t0;
        // 1000 bytes at 1000 B/s = 1 s.
        assert!((elapsed.as_secs_f64() - 1.0).abs() < 1e-6, "{elapsed:?}");
    }

    #[test]
    fn warm_read_charged_at_cached_bandwidth() {
        let d = throttled_disk();
        d.storage().put("f", vec![0u8; 1024]);
        d.read("f", 0, 1024).unwrap();
        let t0 = d.clock().now();
        d.read("f", 0, 1024).unwrap();
        let warm = d.clock().now() - t0;
        // 1024 bytes at 100 kB/s ≈ 10 ms, far below the 1 s cold cost.
        assert!(warm < Duration::from_millis(100), "{warm:?}");
    }

    #[test]
    fn drop_caches_restores_cold_cost() {
        let d = throttled_disk();
        d.storage().put("f", vec![0u8; 1024]);
        d.read("f", 0, 1024).unwrap();
        d.drop_caches();
        let t0 = d.clock().now();
        d.read("f", 0, 1024).unwrap();
        let cold = d.clock().now() - t0;
        assert!(cold >= Duration::from_millis(900), "{cold:?}");
    }

    #[test]
    fn direction_switch_pays_seek() {
        let d = throttled_disk();
        d.storage().put("f", vec![0u8; 4096]);
        d.create("g");
        d.read("f", 0, 100).unwrap(); // last_kind = Read
        let t0 = d.clock().now();
        d.write_at("g", 0, &[1u8; 100]).unwrap();
        let w = d.clock().now() - t0;
        // 100 B at 500 B/s = 200 ms, plus 10 ms seek.
        assert!((w.as_secs_f64() - 0.210).abs() < 1e-6, "{w:?}");
        // A second write in the same direction pays no seek.
        let t1 = d.clock().now();
        d.write_at("g", 100, &[1u8; 100]).unwrap();
        let w2 = d.clock().now() - t1;
        assert!((w2.as_secs_f64() - 0.200).abs() < 1e-6, "{w2:?}");
    }

    #[test]
    fn append_returns_running_offsets() {
        let d = SimDisk::instant();
        d.create("g");
        assert_eq!(d.append("g", &[0u8; 8]).unwrap(), 0);
        assert_eq!(d.append("g", &[0u8; 8]).unwrap(), 8);
        assert_eq!(d.len("g").unwrap(), 16);
    }

    #[test]
    fn stats_capture_bytes_and_direction() {
        let d = SimDisk::instant();
        d.storage().put("f", vec![0u8; 100]);
        d.create("g");
        d.read("f", 0, 100).unwrap();
        d.write_at("g", 0, &[0u8; 40]).unwrap();
        assert_eq!(d.stats().bytes(AccessKind::Read), 100);
        assert_eq!(d.stats().bytes(AccessKind::Write), 40);
        assert_eq!(d.stats().op_count(), 2);
    }

    #[test]
    fn lru_eviction_limits_cache() {
        let d = throttled_disk(); // capacity 4096 B = 4 pages of 1024 B
        d.storage().put("f", vec![0u8; 8192]);
        // Touch pages 0..6 — pages 0 and 1 must be evicted.
        for p in 0..6u64 {
            d.read("f", p * 1024, 1024).unwrap();
        }
        let t0 = d.clock().now();
        d.read("f", 0, 1024).unwrap(); // page 0: must be cold again
        let again = d.clock().now() - t0;
        assert!(again >= Duration::from_millis(900), "{again:?}");
    }

    #[test]
    fn reads_of_missing_files_fail_cleanly() {
        let d = SimDisk::instant();
        assert!(d.read("missing", 0, 1).is_err());
    }

    #[cfg(feature = "fault-inject")]
    mod faults {
        use super::*;
        use crate::fault::{FaultConfig, FaultPlan};

        #[test]
        fn transient_faults_surface_and_clear() {
            let d = SimDisk::instant();
            d.storage().put("db/t/col0.bin", vec![7u8; 64]);
            d.set_fault_plan(FaultPlan::new(FaultConfig {
                p_transient: 1.0,
                max_consecutive: 2,
                ..FaultConfig::seeded(3)
            }));
            let e1 = d.read("db/t/col0.bin", 0, 64).unwrap_err();
            assert!(e1.is_retryable());
            let e2 = d.read("db/t/col0.bin", 0, 64).unwrap_err();
            assert!(e2.is_retryable());
            // Cap reached: third attempt succeeds.
            assert_eq!(d.read("db/t/col0.bin", 0, 64).unwrap(), vec![7u8; 64]);
            let plan = d.clear_fault_plan().unwrap();
            assert_eq!(plan.counters().transient, 2);
            // With the plan cleared the device is healthy again.
            assert!(d.read("db/t/col0.bin", 0, 64).is_ok());
        }

        #[test]
        fn bitflip_corrupts_returned_bytes_not_storage() {
            let d = SimDisk::instant();
            d.storage().put("db/t/col0.bin", vec![0u8; 32]);
            d.set_fault_plan(FaultPlan::new(FaultConfig {
                p_bitflip: 1.0,
                max_consecutive: 1,
                ..FaultConfig::seeded(5)
            }));
            let flipped = d.read("db/t/col0.bin", 0, 32).unwrap();
            assert_ne!(flipped, vec![0u8; 32], "one bit must differ");
            assert_eq!(flipped.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
            // Streak capped at 1 → the re-read returns pristine bytes.
            assert_eq!(d.read("db/t/col0.bin", 0, 32).unwrap(), vec![0u8; 32]);
        }

        #[test]
        fn torn_write_leaves_prefix_only() {
            let d = SimDisk::instant();
            d.create("db/t/col0.bin");
            d.set_fault_plan(FaultPlan::new(FaultConfig {
                p_torn: 1.0,
                max_consecutive: 1,
                ..FaultConfig::seeded(8)
            }));
            let err = d.append("db/t/col0.bin", &[9u8; 100]).unwrap_err();
            assert!(err.is_retryable());
            let torn_len = d.len("db/t/col0.bin").unwrap();
            assert!(torn_len < 100, "short write expected, got {torn_len}");
            // Retry: append recomputes its offset past the torn prefix.
            let off = d.append("db/t/col0.bin", &[9u8; 100]).unwrap();
            assert_eq!(off, torn_len);
            assert_eq!(d.read("db/t/col0.bin", off, 100).unwrap(), vec![9u8; 100]);
        }

        #[test]
        fn crash_fails_everything_until_cleared() {
            let d = SimDisk::instant();
            d.storage().put("f", vec![1u8; 16]);
            d.set_fault_plan(FaultPlan::new(FaultConfig {
                crash_at_op: Some(2),
                ..FaultConfig::seeded(1)
            }));
            assert!(d.read("f", 0, 16).is_ok());
            let e = d.read("f", 0, 16).unwrap_err();
            assert!(!e.is_retryable());
            assert!(d.read("f", 0, 16).is_err());
            d.clear_fault_plan();
            assert!(d.read("f", 0, 16).is_ok(), "restart heals the device");
        }

        #[test]
        fn latency_spike_costs_virtual_time() {
            let cfg = DiskConfig::instant();
            let d = SimDisk::new(cfg, VirtualClock::shared());
            d.storage().put("f", vec![0u8; 16]);
            d.set_fault_plan(FaultPlan::new(FaultConfig {
                p_latency: 1.0,
                latency_spike: Duration::from_millis(50),
                ..FaultConfig::seeded(2)
            }));
            let t0 = d.clock().now();
            d.read("f", 0, 16).unwrap();
            let elapsed = d.clock().now() - t0;
            assert!(elapsed >= Duration::from_millis(50), "{elapsed:?}");
        }
    }
}
