//! Operator configuration: write policies, buffer sizes, worker counts.

use crate::error::{Error, Result};
use std::time::Duration;

/// Scheduling policy for the WRITE thread (paper §3: "The scheduling policy
/// for WRITE dictates the ScanRaw behavior").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Never invoke WRITE — ScanRaw is a parallel external-table operator.
    ExternalTables,
    /// Invoke WRITE for every converted chunk — ScanRaw degenerates into a
    /// parallel Extract-Transform-Load operator ("load & process").
    Eager,
    /// Write a chunk only when it is evicted from the full binary cache
    /// (the NoDB-with-flushing baseline of Fig 8, "buffered loading").
    Buffered,
    /// Load a fixed number of chunks per query regardless of resource
    /// availability (the invisible-loading baseline, Abouzied et al.).
    Invisible {
        /// Chunks force-loaded per query.
        chunks_per_query: u32,
    },
    /// The paper's contribution: write only when READ is blocked (disk idle),
    /// plus the end-of-scan safeguard flush.
    Speculative {
        /// Enables the safeguard mechanism that flushes the binary cache once
        /// the last chunk of the scan has been read (paper §4).
        safeguard: bool,
    },
}

impl WritePolicy {
    /// The paper's default speculative policy (safeguard on).
    pub fn speculative() -> Self {
        WritePolicy::Speculative { safeguard: true }
    }

    /// True if this policy ever writes chunks into the database.
    pub fn may_load(self) -> bool {
        !matches!(self, WritePolicy::ExternalTables)
    }

    /// Short label used by experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            WritePolicy::ExternalTables => "external-tables",
            WritePolicy::Eager => "load+process",
            WritePolicy::Buffered => "buffered-loading",
            WritePolicy::Invisible { .. } => "invisible-loading",
            WritePolicy::Speculative { .. } => "speculative-loading",
        }
    }
}

/// Full configuration of one ScanRaw operator instance.
///
/// Defaults follow the paper's experimental setup scaled to test size:
/// chunk of 2^19 lines in the paper, smaller here; buffer capacities sized so
/// the pipeline can hold several chunks in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRawConfig {
    /// Lines per chunk ("between 2^17 and 2^19 tuples per chunk are optimal",
    /// paper §5.1).
    pub chunk_rows: u32,
    /// Worker threads in the pool (0 = fully sequential conversion).
    pub workers: usize,
    /// Capacity (chunks) of the text-chunks buffer; READ blocks when full.
    pub text_buffer_chunks: usize,
    /// Capacity (chunks) of the position buffer.
    pub position_buffer_chunks: usize,
    /// Capacity (chunks) of the binary-chunks cache.
    pub binary_cache_chunks: usize,
    /// WRITE scheduling policy.
    pub write_policy: WritePolicy,
    /// Collect per-chunk min/max statistics during conversion (paper §3.3).
    pub collect_statistics: bool,
    /// Additionally collect distinct-count sketches and value samples per
    /// chunk/column for cardinality estimation (paper §3.3, "more advanced
    /// statistics"). Implies a small per-chunk CPU cost during conversion.
    pub advanced_statistics: bool,
    /// Skip chunks whose min/max metadata cannot satisfy the predicate.
    pub chunk_skipping: bool,
    /// Cache positional maps produced by TOKENIZE across scans (the NoDB
    /// optimization discussed in paper §2/§3.1 — the paper leaves it off
    /// because raw reading and parsing dominate; supported here for study).
    pub cache_positional_maps: bool,
    /// For chunks with only *some* required columns loaded, read the loaded
    /// columns from the database and convert just the missing ones from the
    /// raw file, merging the two (paper §3.2.1's trade-off; the paper's
    /// experiments convert everything from raw because they are I/O-bound).
    pub hybrid_reads: bool,
    /// Maximum retries for a transient/corrupt device failure before the
    /// operation is treated as permanently failed (DESIGN.md §10).
    pub io_retry_budget: u32,
    /// Base backoff slept (on the virtual clock) between retries; attempt
    /// `n` waits `n * io_retry_backoff`.
    pub io_retry_backoff: Duration,
}

impl Default for ScanRawConfig {
    fn default() -> Self {
        ScanRawConfig {
            chunk_rows: 1 << 14,
            workers: 4,
            text_buffer_chunks: 8,
            position_buffer_chunks: 8,
            binary_cache_chunks: 32,
            write_policy: WritePolicy::speculative(),
            collect_statistics: true,
            advanced_statistics: false,
            chunk_skipping: true,
            cache_positional_maps: false,
            hybrid_reads: false,
            io_retry_budget: 4,
            io_retry_backoff: Duration::from_micros(200),
        }
    }
}

impl ScanRawConfig {
    /// Validates invariants the pipeline relies on.
    ///
    /// # Errors
    ///
    /// Fails when a size parameter (`chunk_rows`, buffer capacities, cache
    /// capacity, worker count) is zero.
    pub fn validate(&self) -> Result<()> {
        if self.chunk_rows == 0 {
            return Err(Error::Config("chunk_rows must be positive".into()));
        }
        if self.text_buffer_chunks == 0 || self.position_buffer_chunks == 0 {
            return Err(Error::Config("pipeline buffers need capacity >= 1".into()));
        }
        if self.binary_cache_chunks == 0 {
            return Err(Error::Config("binary cache needs capacity >= 1".into()));
        }
        if let WritePolicy::Invisible { chunks_per_query } = self.write_policy {
            if chunks_per_query == 0 {
                return Err(Error::Config(
                    "invisible loading needs chunks_per_query >= 1".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builder-style setter for the write policy.
    pub fn with_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style setter for lines per chunk.
    pub fn with_chunk_rows(mut self, rows: u32) -> Self {
        self.chunk_rows = rows;
        self
    }

    /// Builder-style setter for the binary cache capacity.
    pub fn with_cache_chunks(mut self, chunks: usize) -> Self {
        self.binary_cache_chunks = chunks;
        self
    }

    /// Builder-style switch for advanced statistics collection.
    pub fn with_advanced_statistics(mut self, on: bool) -> Self {
        self.advanced_statistics = on;
        self
    }

    /// Builder-style switch for the positional-map cache.
    pub fn with_positional_map_cache(mut self, on: bool) -> Self {
        self.cache_positional_maps = on;
        self
    }

    /// Builder-style switch for hybrid database+raw column reads.
    pub fn with_hybrid_reads(mut self, on: bool) -> Self {
        self.hybrid_reads = on;
        self
    }

    /// Builder-style setter for the transient-I/O retry budget.
    pub fn with_io_retry_budget(mut self, retries: u32) -> Self {
        self.io_retry_budget = retries;
        self
    }

    /// Builder-style setter for the base retry backoff.
    pub fn with_io_retry_backoff(mut self, backoff: Duration) -> Self {
        self.io_retry_backoff = backoff;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ScanRawConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_chunk_rows_rejected() {
        let c = ScanRawConfig::default().with_chunk_rows(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_buffers_rejected() {
        let c = ScanRawConfig {
            text_buffer_chunks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ScanRawConfig {
            binary_cache_chunks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invisible_needs_positive_quota() {
        let c = ScanRawConfig::default().with_policy(WritePolicy::Invisible {
            chunks_per_query: 0,
        });
        assert!(c.validate().is_err());
        let c = ScanRawConfig::default().with_policy(WritePolicy::Invisible {
            chunks_per_query: 4,
        });
        c.validate().unwrap();
    }

    #[test]
    fn policy_properties() {
        assert!(!WritePolicy::ExternalTables.may_load());
        assert!(WritePolicy::speculative().may_load());
        assert_eq!(WritePolicy::Eager.label(), "load+process");
    }

    #[test]
    fn builder_chain() {
        let c = ScanRawConfig::default()
            .with_workers(8)
            .with_chunk_rows(1024)
            .with_cache_chunks(2)
            .with_policy(WritePolicy::Buffered);
        assert_eq!(c.workers, 8);
        assert_eq!(c.chunk_rows, 1024);
        assert_eq!(c.binary_cache_chunks, 2);
        assert_eq!(c.write_policy, WritePolicy::Buffered);
    }
}
