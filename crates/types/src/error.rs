//! Error handling for the whole workspace.

use std::fmt;

/// Convenience alias used across all ScanRaw crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Classification of a device failure, used by retry policy (DESIGN.md §10).
///
/// The READ stage and the WRITE thread match on this kind: `Transient`
/// failures are retried under a bounded backoff budget, `Permanent` failures
/// degrade the operator gracefully (loading is skipped, the query answers
/// from raw), and `Corrupt` reads are retried like transients — a read-path
/// bit flip disappears on re-read, while genuinely corrupt stored payload
/// exhausts the budget and falls back to raw conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// Likely to succeed on retry: an injected glitch, a detected short
    /// write, a momentary device error.
    Transient,
    /// Retrying cannot help: missing file, out-of-range access, a crashed
    /// device.
    Permanent,
    /// Bytes came back but failed validation (checksum mismatch, torn
    /// payload, undecodable content).
    Corrupt,
}

impl IoErrorKind {
    /// Stable lowercase name used in messages and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            IoErrorKind::Transient => "transient",
            IoErrorKind::Permanent => "permanent",
            IoErrorKind::Corrupt => "corrupt",
        }
    }
}

/// Typed simulated-device failure: what happened, to which file, and whether
/// retrying may help. Replaces the former stringly `Error::Io(String)` so
/// retry policy can match on [`IoErrorKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    pub kind: IoErrorKind,
    /// Device file the operation targeted (empty when not file-specific).
    pub file: String,
    pub message: String,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file.is_empty() {
            write!(f, "{}: {}", self.kind.name(), self.message)
        } else {
            write!(
                f,
                "{} on '{}': {}",
                self.kind.name(),
                self.file,
                self.message
            )
        }
    }
}

/// Unified error type for raw-file conversion, storage, and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tuple could not be tokenized (e.g. too few delimiters for the schema).
    Tokenize { line: u64, message: String },
    /// An attribute could not be converted to its declared type.
    Parse {
        line: u64,
        column: usize,
        message: String,
    },
    /// Schema-level problem: unknown column, type mismatch, duplicate field…
    Schema(String),
    /// Simulated-device failure, typed for retry policy.
    Io(IoError),
    /// Catalog/storage inconsistency (missing chunk, column not loaded…).
    Storage(String),
    /// Query is malformed or references unavailable data.
    Query(String),
    /// Query rejected by build-time validation (out-of-range column, empty
    /// aggregate list) before any scan work started.
    InvalidQuery(String),
    /// The pipeline was shut down or a channel peer disappeared.
    Pipeline(String),
    /// Configuration rejected during validation.
    Config(String),
    /// Admission control rejected the query: the serving queue already holds
    /// `depth` queries (its configured bound). The caller should shed load
    /// or retry later; nothing was scanned.
    Overloaded { depth: usize },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tokenize { line, message } => {
                write!(f, "tokenize error at line {line}: {message}")
            }
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::Pipeline(m) => write!(f, "pipeline error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Overloaded { depth } => {
                write!(f, "overloaded: admission queue full at depth {depth}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand for a *permanent* [`Error::Io`] with a formatted message —
    /// the historical default (missing files, out-of-range accesses).
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(IoError {
            kind: IoErrorKind::Permanent,
            file: String::new(),
            message: msg.into(),
        })
    }

    /// A transient (retryable) I/O failure on `file`.
    pub fn io_transient(file: impl Into<String>, msg: impl Into<String>) -> Self {
        Error::Io(IoError {
            kind: IoErrorKind::Transient,
            file: file.into(),
            message: msg.into(),
        })
    }

    /// A permanent (non-retryable) I/O failure on `file`.
    pub fn io_permanent(file: impl Into<String>, msg: impl Into<String>) -> Self {
        Error::Io(IoError {
            kind: IoErrorKind::Permanent,
            file: file.into(),
            message: msg.into(),
        })
    }

    /// A corruption failure on `file` (checksum mismatch, torn payload).
    pub fn io_corrupt(file: impl Into<String>, msg: impl Into<String>) -> Self {
        Error::Io(IoError {
            kind: IoErrorKind::Corrupt,
            file: file.into(),
            message: msg.into(),
        })
    }

    /// The I/O kind, when this is an [`Error::Io`].
    pub fn io_kind(&self) -> Option<IoErrorKind> {
        // Every non-Io variant is listed so adding one forces a decision on
        // whether it carries a retryable device failure (L007).
        match self {
            Error::Io(e) => Some(e.kind),
            Error::Tokenize { .. }
            | Error::Parse { .. }
            | Error::Schema(_)
            | Error::Storage(_)
            | Error::Query(_)
            | Error::InvalidQuery(_)
            | Error::Pipeline(_)
            | Error::Config(_)
            | Error::Overloaded { .. } => None,
        }
    }

    /// True when retrying the failed operation may succeed (transient
    /// glitches and read-path corruption; see [`IoErrorKind`]).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.io_kind(),
            Some(IoErrorKind::Transient) | Some(IoErrorKind::Corrupt)
        )
    }

    /// Shorthand for an [`Error::Storage`] with a formatted message.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Shorthand for an [`Error::Query`] with a formatted message.
    pub fn query(msg: impl Into<String>) -> Self {
        Error::Query(msg.into())
    }

    /// Shorthand for an [`Error::InvalidQuery`] with a formatted message.
    pub fn invalid_query(msg: impl Into<String>) -> Self {
        Error::InvalidQuery(msg.into())
    }

    /// An admission-control rejection at the given queue depth.
    pub fn overloaded(depth: usize) -> Self {
        Error::Overloaded { depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = Error::Parse {
            line: 12,
            column: 3,
            message: "bad digit".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 12"));
        assert!(s.contains("column 3"));
        assert!(s.contains("bad digit"));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::io("x"), Error::Io(_)));
        assert!(matches!(Error::storage("x"), Error::Storage(_)));
        assert!(matches!(Error::query("x"), Error::Query(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::io("a"), Error::io("a"));
        assert_ne!(Error::io("a"), Error::storage("a"));
    }

    #[test]
    fn io_kinds_drive_retryability() {
        assert_eq!(Error::io("x").io_kind(), Some(IoErrorKind::Permanent));
        assert!(!Error::io("x").is_retryable());
        assert!(Error::io_transient("f", "glitch").is_retryable());
        assert!(Error::io_corrupt("f", "crc").is_retryable());
        assert!(!Error::io_permanent("f", "gone").is_retryable());
        assert_eq!(Error::storage("x").io_kind(), None);
    }

    #[test]
    fn overloaded_carries_depth_and_is_not_retryable_io() {
        let e = Error::overloaded(64);
        assert_eq!(e, Error::Overloaded { depth: 64 });
        assert_eq!(e.io_kind(), None);
        assert!(!e.is_retryable());
        let s = e.to_string();
        assert!(s.contains("overloaded"), "{s}");
        assert!(s.contains("64"), "{s}");
    }

    #[test]
    fn io_display_includes_kind_and_file() {
        let s = Error::io_transient("db/t/col0.bin", "injected").to_string();
        assert!(s.contains("transient"), "{s}");
        assert!(s.contains("db/t/col0.bin"), "{s}");
        let s = Error::io("no such file").to_string();
        assert!(s.contains("permanent"), "{s}");
    }
}
