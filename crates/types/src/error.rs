//! Error handling for the whole workspace.

use std::fmt;

/// Convenience alias used across all ScanRaw crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for raw-file conversion, storage, and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tuple could not be tokenized (e.g. too few delimiters for the schema).
    Tokenize { line: u64, message: String },
    /// An attribute could not be converted to its declared type.
    Parse {
        line: u64,
        column: usize,
        message: String,
    },
    /// Schema-level problem: unknown column, type mismatch, duplicate field…
    Schema(String),
    /// Simulated-device failure (out-of-range read, unknown file…).
    Io(String),
    /// Catalog/storage inconsistency (missing chunk, column not loaded…).
    Storage(String),
    /// Query is malformed or references unavailable data.
    Query(String),
    /// The pipeline was shut down or a channel peer disappeared.
    Pipeline(String),
    /// Configuration rejected during validation.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tokenize { line, message } => {
                write!(f, "tokenize error at line {line}: {message}")
            }
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Pipeline(m) => write!(f, "pipeline error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand for an [`Error::Io`] with a formatted message.
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Shorthand for an [`Error::Storage`] with a formatted message.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Shorthand for an [`Error::Query`] with a formatted message.
    pub fn query(msg: impl Into<String>) -> Self {
        Error::Query(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = Error::Parse {
            line: 12,
            column: 3,
            message: "bad digit".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 12"));
        assert!(s.contains("column 3"));
        assert!(s.contains("bad digit"));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::io("x"), Error::Io(_)));
        assert!(matches!(Error::storage("x"), Error::Storage(_)));
        assert!(matches!(Error::query("x"), Error::Query(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::io("a"), Error::io("a"));
        assert_ne!(Error::io("a"), Error::storage("a"));
    }
}
