//! Chunk structures flowing through the ScanRaw pipeline.
//!
//! The raw file is logically split into horizontal portions containing a
//! sequence of lines — *chunks* — which are "the reading and processing unit"
//! (paper §3.1). Three chunk representations exist, one per pipeline buffer:
//!
//! * [`TextChunk`] — raw bytes read from the file (text chunks buffer);
//! * [`PositionalMap`] — attribute start offsets produced by TOKENIZE
//!   (position buffer, carried next to its `TextChunk`);
//! * [`BinaryChunk`] — columnar binary representation produced by PARSE+MAP
//!   (binary chunks buffer / cache); also the database storage format.

use crate::error::{Error, Result};
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// Identifier of a chunk within one raw file (dense, 0-based, in file order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkId(pub u32);

impl ChunkId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk#{}", self.0)
    }
}

/// A horizontal slice of the raw file: whole lines, raw bytes.
#[derive(Debug, Clone)]
pub struct TextChunk {
    pub id: ChunkId,
    /// Byte offset of the first line within the raw file.
    pub file_offset: u64,
    /// Index of the first row (line) within the raw file.
    pub first_row: u64,
    /// Number of complete lines contained.
    pub rows: u32,
    /// The raw bytes, ending with the final line's terminator (if present in
    /// the file; the last chunk of a file may lack a trailing newline).
    pub data: bytes::Bytes,
}

impl TextChunk {
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Positional map for one text chunk (paper §2, TOKENIZE).
///
/// For every line, the byte offsets (relative to the chunk start) where each
/// of the first `cols_mapped` attributes begins. A *partial* map (selective
/// tokenizing) stops early; consumers scan forward from the closest mapped
/// attribute for the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionalMap {
    rows: u32,
    cols_mapped: u32,
    /// Start offset of each line within the chunk, plus a final sentinel equal
    /// to the chunk length (so line `i` spans `line_starts[i]..line_starts[i+1]`,
    /// terminator included).
    line_starts: Vec<u32>,
    /// Row-major: `attr_starts[row * cols_mapped + col]` is the offset of the
    /// first byte of attribute `col` in line `row`.
    attr_starts: Vec<u32>,
}

impl PositionalMap {
    /// Assembles a map from its parts, validating dimensions.
    ///
    /// # Errors
    ///
    /// Fails when `line_starts` or `attr_starts` do not match the declared
    /// `rows` × `cols_mapped` dimensions.
    pub fn new(
        rows: u32,
        cols_mapped: u32,
        line_starts: Vec<u32>,
        attr_starts: Vec<u32>,
    ) -> Result<Self> {
        if line_starts.len() != rows as usize + 1 {
            return Err(Error::Schema(format!(
                "positional map needs {} line starts, got {}",
                rows + 1,
                line_starts.len()
            )));
        }
        if attr_starts.len() != rows as usize * cols_mapped as usize {
            return Err(Error::Schema(format!(
                "positional map needs {} attribute starts, got {}",
                rows as usize * cols_mapped as usize,
                attr_starts.len()
            )));
        }
        Ok(PositionalMap {
            rows,
            cols_mapped,
            line_starts,
            attr_starts,
        })
    }

    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// How many leading attributes have recorded start positions.
    pub fn cols_mapped(&self) -> u32 {
        self.cols_mapped
    }

    /// Byte range (within the chunk) of line `row`, terminator included.
    pub fn line_span(&self, row: u32) -> (u32, u32) {
        (
            self.line_starts[row as usize],
            self.line_starts[row as usize + 1],
        )
    }

    /// Start offset of `col` in `row`, if mapped.
    pub fn attr_start(&self, row: u32, col: u32) -> Option<u32> {
        if col < self.cols_mapped && row < self.rows {
            Some(self.attr_starts[row as usize * self.cols_mapped as usize + col as usize])
        } else {
            None
        }
    }

    /// Approximate heap size, used for buffer accounting.
    pub fn size_bytes(&self) -> usize {
        (self.line_starts.len() + self.attr_starts.len()) * std::mem::size_of::<u32>()
    }
}

/// Column values of one chunk in the binary processing representation.
///
/// "In binary format, tuples are vertically partitioned along columns
/// represented as arrays in memory" (paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
}

impl ColumnData {
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` as a dynamic scalar (bounds-checked).
    pub fn value(&self, row: usize) -> Option<Value> {
        match self {
            ColumnData::Int64(v) => v.get(row).map(|&x| Value::Int(x)),
            ColumnData::Float64(v) => v.get(row).map(|&x| Value::Float(x)),
            ColumnData::Utf8(v) => v.get(row).map(|x| Value::Str(x.clone())),
        }
    }

    /// Bytes occupied in the database representation.
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| 4 + s.len()).sum(),
        }
    }

    /// Minimum and maximum as `Value`s (None for an empty column).
    pub fn min_max(&self) -> Option<(Value, Value)> {
        match self {
            ColumnData::Int64(v) => {
                let min = *v.iter().min()?;
                let max = *v.iter().max()?;
                Some((Value::Int(min), Value::Int(max)))
            }
            ColumnData::Float64(v) => {
                let mut it = v.iter().copied();
                let first = it.next()?;
                let (mut lo, mut hi) = (first, first);
                for x in it {
                    if x < lo {
                        lo = x;
                    }
                    if x > hi {
                        hi = x;
                    }
                }
                Some((Value::Float(lo), Value::Float(hi)))
            }
            ColumnData::Utf8(v) => {
                let min = v.iter().min()?;
                let max = v.iter().max()?;
                Some((Value::Str(min.clone()), Value::Str(max.clone())))
            }
        }
    }
}

/// A chunk converted to the columnar binary representation.
///
/// Not every column of the table has to be present ("it is important to
/// emphasize that not all the columns in a table have to be present in a
/// binary chunk", paper §3.1): `columns[i]` is `None` when attribute `i`
/// was not converted (selective parsing) or not requested.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryChunk {
    pub id: ChunkId,
    pub first_row: u64,
    pub rows: u32,
    /// Parallel to the table schema; `None` = column absent from this chunk.
    pub columns: Vec<Option<ColumnData>>,
}

impl BinaryChunk {
    /// Creates an empty chunk shell with `n_cols` absent columns.
    pub fn empty(id: ChunkId, first_row: u64, rows: u32, n_cols: usize) -> Self {
        BinaryChunk {
            id,
            first_row,
            rows,
            columns: vec![None; n_cols],
        }
    }

    /// Validates that every present column matches the schema type and the
    /// declared row count.
    ///
    /// # Errors
    ///
    /// Fails when the column count diverges from the schema, a column's
    /// value type mismatches its field type, or a column's length differs
    /// from the chunk's declared row count.
    ///
    /// # Panics
    ///
    /// Never panics on user input; the internal indexing is bounded by the
    /// length check above it.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.columns.len() != schema.len() {
            return Err(Error::Schema(format!(
                "chunk has {} column slots, schema has {}",
                self.columns.len(),
                schema.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if let Some(c) = col {
                let expect = schema.field(i).expect("index checked").data_type;
                if c.data_type() != expect {
                    return Err(Error::Schema(format!(
                        "column {i} is {} but schema says {}",
                        c.data_type().name(),
                        expect.name()
                    )));
                }
                if c.len() != self.rows as usize {
                    return Err(Error::Schema(format!(
                        "column {i} has {} rows, chunk declares {}",
                        c.len(),
                        self.rows
                    )));
                }
            }
        }
        Ok(())
    }

    /// Indices of the columns present in this chunk.
    pub fn present_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect()
    }

    /// True when every column in `wanted` is present.
    pub fn covers(&self, wanted: &[usize]) -> bool {
        wanted
            .iter()
            .all(|&i| self.columns.get(i).is_some_and(|c| c.is_some()))
    }

    pub fn column(&self, idx: usize) -> Option<&ColumnData> {
        self.columns.get(idx).and_then(|c| c.as_ref())
    }

    /// Total bytes of all present columns (the quantity WRITE pushes to disk).
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().flatten().map(|c| c.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 3,
            columns: vec![
                Some(ColumnData::Int64(vec![1, 2, 3])),
                None,
                Some(ColumnData::Int64(vec![10, 20, 30])),
            ],
        }
    }

    #[test]
    fn positional_map_dimension_checks() {
        assert!(PositionalMap::new(2, 2, vec![0, 5, 10], vec![0, 2, 5, 7]).is_ok());
        assert!(PositionalMap::new(2, 2, vec![0, 5], vec![0, 2, 5, 7]).is_err());
        assert!(PositionalMap::new(2, 2, vec![0, 5, 10], vec![0, 2]).is_err());
    }

    #[test]
    fn positional_map_lookup() {
        let m = PositionalMap::new(2, 2, vec![0, 5, 10], vec![0, 2, 5, 7]).unwrap();
        assert_eq!(m.line_span(0), (0, 5));
        assert_eq!(m.line_span(1), (5, 10));
        assert_eq!(m.attr_start(0, 1), Some(2));
        assert_eq!(m.attr_start(1, 0), Some(5));
        assert_eq!(m.attr_start(0, 2), None, "col beyond mapped prefix");
        assert_eq!(m.attr_start(2, 0), None, "row out of range");
    }

    #[test]
    fn column_data_min_max() {
        let c = ColumnData::Int64(vec![5, -1, 9]);
        assert_eq!(c.min_max(), Some((Value::Int(-1), Value::Int(9))));
        let e = ColumnData::Int64(vec![]);
        assert_eq!(e.min_max(), None);
        let s = ColumnData::Utf8(vec!["b".into(), "a".into()]);
        assert_eq!(s.min_max(), Some((Value::from("a"), Value::from("b"))));
    }

    #[test]
    fn column_size_accounting() {
        assert_eq!(ColumnData::Int64(vec![1, 2]).size_bytes(), 16);
        assert_eq!(
            ColumnData::Utf8(vec!["ab".into(), "c".into()]).size_bytes(),
            4 + 2 + 4 + 1
        );
    }

    #[test]
    fn binary_chunk_presence() {
        let c = sample_chunk();
        assert_eq!(c.present_columns(), vec![0, 2]);
        assert!(c.covers(&[0, 2]));
        assert!(!c.covers(&[0, 1]));
        assert_eq!(c.size_bytes(), 48);
    }

    #[test]
    fn binary_chunk_validation() {
        let schema = Schema::uniform_ints(3);
        sample_chunk().validate(&schema).unwrap();

        let mut wrong_rows = sample_chunk();
        wrong_rows.rows = 4;
        assert!(wrong_rows.validate(&schema).is_err());

        let mut wrong_type = sample_chunk();
        wrong_type.columns[0] = Some(ColumnData::Utf8(vec!["x".into(); 3]));
        assert!(wrong_type.validate(&schema).is_err());

        let narrow = Schema::uniform_ints(2);
        assert!(sample_chunk().validate(&narrow).is_err());
    }

    #[test]
    fn empty_chunk_shell() {
        let c = BinaryChunk::empty(ChunkId(7), 100, 50, 4);
        assert_eq!(c.present_columns(), Vec::<usize>::new());
        assert_eq!(c.columns.len(), 4);
        assert_eq!(c.size_bytes(), 0);
    }
}
