//! Common vocabulary types for the ScanRaw reproduction.
//!
//! This crate defines the data model shared by every other crate in the
//! workspace: schemas and typed values ([`schema`], [`value`]), the chunk
//! structures that flow through the ScanRaw pipeline ([`chunk`]), operator
//! configuration ([`config`]), and the error type ([`error`]).
//!
//! The paper (Cheng & Rusu, SIGMOD 2014, §2–§3) decomposes in-situ raw-file
//! processing into READ → TOKENIZE → PARSE → MAP → {engine, WRITE} stages that
//! communicate through buffers holding *chunks*: horizontal file partitions of
//! a fixed number of lines. The types here are the currency of those buffers.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod chunk;
pub mod config;
pub mod error;
pub mod layout;
pub mod predicate;
pub mod schema;
pub mod value;

pub use chunk::{BinaryChunk, ChunkId, ColumnData, PositionalMap, TextChunk};
pub use config::{ScanRawConfig, WritePolicy};
pub use error::{Error, IoError, IoErrorKind, Result};
pub use layout::{ChunkLayout, ChunkMeta};
pub use predicate::RangePredicate;
pub use schema::{DataType, Field, Schema};
pub use value::Value;
