//! Raw-file chunk layout metadata.
//!
//! Produced by the first sequential scan of a raw file and stored in the
//! catalog: "the types of statistics collected by ScanRaw include the
//! position in the raw file where each chunk starts" (paper §3.3). With the
//! layout known, later queries can read chunks directly, out of order, or
//! skip them entirely.

use crate::chunk::ChunkId;

/// Location of one chunk inside the raw file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    pub id: ChunkId,
    pub file_offset: u64,
    pub byte_len: u64,
    pub first_row: u64,
    pub rows: u32,
}

/// The complete chunk map of one raw file (dense, in file order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkLayout {
    chunks: Vec<ChunkMeta>,
}

impl ChunkLayout {
    /// Appends the next chunk; ids must arrive dense and in order.
    pub fn push(&mut self, meta: ChunkMeta) {
        debug_assert_eq!(
            meta.id.index(),
            self.chunks.len(),
            "chunks appended in order"
        );
        self.chunks.push(meta);
    }

    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    pub fn get(&self, id: ChunkId) -> Option<&ChunkMeta> {
        self.chunks.get(id.index())
    }

    pub fn iter(&self) -> impl Iterator<Item = &ChunkMeta> {
        self.chunks.iter()
    }

    pub fn total_rows(&self) -> u64 {
        self.chunks.iter().map(|c| c.rows as u64).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.byte_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(i: u32, rows: u32) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId(i),
            file_offset: i as u64 * 100,
            byte_len: 100,
            first_row: i as u64 * rows as u64,
            rows,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut l = ChunkLayout::default();
        l.push(meta(0, 10));
        l.push(meta(1, 10));
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(ChunkId(1)).unwrap().file_offset, 100);
        assert!(l.get(ChunkId(2)).is_none());
    }

    #[test]
    fn totals() {
        let mut l = ChunkLayout::default();
        l.push(meta(0, 10));
        l.push(meta(1, 7));
        assert_eq!(l.total_rows(), 17);
        assert_eq!(l.total_bytes(), 200);
    }
}
