//! Relational schema description for raw files and database tables.
//!
//! A [`Schema`] is supplied alongside every raw file (paper §2: "The input to
//! the process is a raw file, a schema, and a procedure to extract tuples with
//! the given schema"). The same schema describes the columnar binary layout
//! used by the execution engine and the database store.

use crate::error::{Error, Result};

/// Physical type of one attribute.
///
/// The paper's synthetic suite uses unsigned 32-bit integers (stored here as
/// `Int64` for arithmetic headroom in SUM aggregates); SAM files additionally
/// need strings and the engine supports floats for generality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for the paper's `u32 < 2^31` data).
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string (SAM QNAME, CIGAR, SEQ, …).
    Utf8,
}

impl DataType {
    /// Width in bytes of one value in the binary (database) representation.
    ///
    /// Strings are variable length; we charge their actual byte length plus a
    /// 4-byte length prefix when sizing chunks, so this returns the prefix.
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Utf8 => 4,
        }
    }

    /// Human-readable name, used in catalogs and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
        }
    }
}

/// One named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// Ordered collection of fields describing a raw file or table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate field names.
    ///
    /// # Errors
    ///
    /// Fails when two fields share a name.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::Schema(format!("duplicate field name '{}'", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// Schema of `n` integer columns named `c0..c{n-1}` — the shape of the
    /// paper's synthetic CSV suite.
    pub fn uniform_ints(n: usize) -> Self {
        Schema {
            fields: (0..n)
                .map(|i| Field::new(format!("c{i}"), DataType::Int64))
                .collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Index of the field with the given name.
    ///
    /// # Errors
    ///
    /// Fails when no field is named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::Schema(format!("unknown column '{name}'")))
    }

    /// Projects a subset of columns into a new schema (keeps input order).
    ///
    /// # Errors
    ///
    /// Fails when an index is out of bounds for this schema.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            let f = self
                .fields
                .get(i)
                .ok_or_else(|| Error::Schema(format!("column index {i} out of range")))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// Estimated bytes per row in the binary representation (strings counted
    /// as their length prefix only; callers add payload bytes).
    pub fn fixed_row_width(&self) -> usize {
        self.fields.iter().map(|f| f.data_type.fixed_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ints_names_and_types() {
        let s = Schema::uniform_ints(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).unwrap().name, "c0");
        assert_eq!(s.field(2).unwrap().name, "c2");
        assert!(s.fields().iter().all(|f| f.data_type == DataType::Int64));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ])
        .unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn index_of_finds_and_errors() {
        let s = Schema::uniform_ints(4);
        assert_eq!(s.index_of("c2").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn project_subset_preserves_order() {
        let s = Schema::uniform_ints(5);
        let p = s.project(&[3, 1]).unwrap();
        assert_eq!(p.field(0).unwrap().name, "c3");
        assert_eq!(p.field(1).unwrap().name, "c1");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn fixed_row_width_sums_widths() {
        let s = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        assert_eq!(s.fixed_row_width(), 8 + 8 + 4);
    }
}
