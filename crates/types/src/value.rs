//! Scalar values used by expressions, statistics, and group-by keys.

use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed scalar.
///
/// Values of different types never compare equal; ordering across types is
/// defined (Int < Float < Str) only so that `Value` can key ordered maps.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Str(_) => DataType::Utf8,
        }
    }

    /// Numeric view used by arithmetic expressions; strings are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl Eq for Value {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), _) => Ordering::Less,
            (_, Value::Int(_)) => Ordering::Greater,
            (Value::Float(_), _) => Ordering::Less,
            (_, Value::Float(_)) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn value_types_report_correctly() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int64);
        assert_eq!(Value::Float(1.0).data_type(), DataType::Float64);
        assert_eq!(Value::from("x").data_type(), DataType::Utf8);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(2.5).as_i64(), None);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.0) < Value::Float(1.5));
        assert!(Value::from("a") < Value::from("b"));
    }

    #[test]
    fn cross_type_order_is_total() {
        assert!(Value::Int(i64::MAX) < Value::Float(f64::MIN));
        assert!(Value::Float(f64::MAX) < Value::from(""));
    }

    #[test]
    fn hashable_as_group_key() {
        let mut m: HashMap<Value, usize> = HashMap::new();
        *m.entry(Value::from("10M")).or_default() += 1;
        *m.entry(Value::from("10M")).or_default() += 1;
        assert_eq!(m[&Value::from("10M")], 2);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::from("cigar").to_string(), "cigar");
    }
}
