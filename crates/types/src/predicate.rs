//! Range predicates used for chunk skipping.
//!
//! The catalog stores per-chunk min/max values; a query whose selection can
//! be summarized as a value range lets READ skip chunks whose ranges cannot
//! overlap it ("chunks can be ignored altogether if the selection predicate
//! cannot be satisfied by any tuple in the chunk. This can be checked from
//! the minimum/maximum values stored in the metadata", paper §3.2.1).

use crate::value::Value;
use std::ops::Bound;

/// A closed/open/unbounded value range over one column.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePredicate {
    pub column: usize,
    pub low: Bound<Value>,
    pub high: Bound<Value>,
}

impl RangePredicate {
    /// `column BETWEEN lo AND hi` (inclusive).
    pub fn between(column: usize, lo: Value, hi: Value) -> Self {
        RangePredicate {
            column,
            low: Bound::Included(lo),
            high: Bound::Included(hi),
        }
    }

    /// `column >= lo`.
    pub fn at_least(column: usize, lo: Value) -> Self {
        RangePredicate {
            column,
            low: Bound::Included(lo),
            high: Bound::Unbounded,
        }
    }

    /// `column <= hi`.
    pub fn at_most(column: usize, hi: Value) -> Self {
        RangePredicate {
            column,
            low: Bound::Unbounded,
            high: Bound::Included(hi),
        }
    }

    /// `column = v`.
    pub fn equals(column: usize, v: Value) -> Self {
        RangePredicate::between(column, v.clone(), v)
    }

    /// Could any value in `[cmin, cmax]` satisfy this predicate?
    pub fn may_overlap(&self, cmin: &Value, cmax: &Value) -> bool {
        let above_low = match &self.low {
            Bound::Included(lo) => cmax >= lo,
            Bound::Excluded(lo) => cmax > lo,
            Bound::Unbounded => true,
        };
        let below_high = match &self.high {
            Bound::Included(hi) => cmin <= hi,
            Bound::Excluded(hi) => cmin < hi,
            Bound::Unbounded => true,
        };
        above_low && below_high
    }

    /// Does a single value satisfy the predicate?
    pub fn contains(&self, v: &Value) -> bool {
        self.may_overlap(v, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_overlap() {
        let p = RangePredicate::between(0, Value::Int(10), Value::Int(20));
        assert!(p.may_overlap(&Value::Int(15), &Value::Int(30)));
        assert!(p.may_overlap(&Value::Int(0), &Value::Int(10)));
        assert!(!p.may_overlap(&Value::Int(21), &Value::Int(99)));
        assert!(!p.may_overlap(&Value::Int(-5), &Value::Int(9)));
    }

    #[test]
    fn open_bounds() {
        let p = RangePredicate {
            column: 0,
            low: Bound::Excluded(Value::Int(10)),
            high: Bound::Excluded(Value::Int(20)),
        };
        assert!(!p.may_overlap(&Value::Int(0), &Value::Int(10)));
        assert!(!p.may_overlap(&Value::Int(20), &Value::Int(30)));
        assert!(p.may_overlap(&Value::Int(11), &Value::Int(19)));
    }

    #[test]
    fn half_bounded() {
        assert!(
            RangePredicate::at_least(0, Value::Int(5)).may_overlap(&Value::Int(0), &Value::Int(5))
        );
        assert!(
            !RangePredicate::at_least(0, Value::Int(5)).may_overlap(&Value::Int(0), &Value::Int(4))
        );
        assert!(
            RangePredicate::at_most(0, Value::Int(5)).may_overlap(&Value::Int(5), &Value::Int(9))
        );
        assert!(
            !RangePredicate::at_most(0, Value::Int(5)).may_overlap(&Value::Int(6), &Value::Int(9))
        );
    }

    #[test]
    fn contains_single_values() {
        let p = RangePredicate::equals(2, Value::from("10M"));
        assert!(p.contains(&Value::from("10M")));
        assert!(!p.contains(&Value::from("9M")));
        assert_eq!(p.column, 2);
    }
}
